package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	burst "repro"
	"repro/internal/core"
)

// testSuite is a small deterministic model-only suite: explicit tiers,
// a population grid, no simulation — fast cells with real memo traffic.
func testSuite(name string, pops ...int) core.Suite {
	grid := make([][]int, len(pops))
	for i, n := range pops {
		grid[i] = []int{n}
	}
	return core.Suite{
		Name: name,
		Base: core.Scenario{
			Name:      name,
			ThinkTime: 0.5,
			Tiers: []core.TierSpec{
				{Name: "front", Mean: 0.006, IndexOfDispersion: 3, P95: 0.015},
				{Name: "db", Mean: 0.009, IndexOfDispersion: 40, P95: 0.02},
			},
			Solvers: []core.SolverKind{core.SolverMAP, core.SolverMVA, core.SolverBounds},
		},
		Grid: core.Grid{Populations: grid},
	}
}

func mustJSONSuite(t *testing.T, s core.Suite) []byte {
	t.Helper()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc
}

// waitState polls until the job reaches want (or any terminal state)
// and returns the final status.
func waitState(t *testing.T, svc *Service, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for {
		st, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cellReports maps hash → report JSON for every succeeded row.
func cellReports(t *testing.T, rows []core.SuiteRow) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, row := range rows {
		if row.Status != core.CellStatusOK || row.Report == nil {
			continue
		}
		data, err := json.Marshal(row.Report)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := out[row.Hash]; dup && prev != string(data) {
			t.Fatalf("hash %s has two different reports", row.Hash)
		}
		out[row.Hash] = string(data)
	}
	return out
}

func TestSubmitRunsJobAndDedupes(t *testing.T) {
	svc := newTestService(t, Config{})
	spec := mustJSONSuite(t, testSuite("unit", 5, 10))

	st, started, err := svc.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("first submit did not start a job")
	}
	if st.Cells != 2 {
		t.Fatalf("cells = %d, want 2", st.Cells)
	}
	final := waitState(t, svc, st.ID, JobDone)
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("final status %+v, want 2 done / 0 failed", final)
	}
	if final.Memo == nil || final.Memo.Misses() == 0 {
		t.Fatalf("cold job memo %+v, want misses recorded", final.Memo)
	}

	// Identical resubmission returns the finished job without running.
	st2, started2, err := svc.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if started2 || st2.ID != st.ID || st2.State != JobDone {
		t.Fatalf("resubmit: started=%v state=%s id match=%v, want existing done job", started2, st2.State, st2.ID == st.ID)
	}

	// Rows spooled: 2 cells + footer, and the footer matches job memo.
	rows, err := core.ReadJSONLRows(filepath.Join(svc.cfg.SpoolDir, st.ID, "rows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("spool has %d rows, want 2 cells + footer", len(rows))
	}
	footer := rows[len(rows)-1]
	if footer.Status != core.CellStatusFooter || footer.Footer == nil {
		t.Fatalf("last spool row %+v, want footer", footer)
	}
	if footer.Footer.Memo != *final.Memo {
		t.Fatalf("footer memo %+v != job memo %+v", footer.Footer.Memo, *final.Memo)
	}
}

// TestRerunServedFromSharedMemo is the acceptance pin: re-executing an
// identical suite on a warm daemon is all cache hits, zero misses, and
// its rows are bit-identical to the cold run's.
func TestRerunServedFromSharedMemo(t *testing.T) {
	svc := newTestService(t, Config{})
	spec := mustJSONSuite(t, testSuite("warm", 5, 10, 15))

	st, _, err := svc.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitState(t, svc, st.ID, JobDone)
	coldRows, err := core.ReadJSONLRows(filepath.Join(svc.cfg.SpoolDir, st.ID, "rows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	coldReports := cellReports(t, coldRows)
	if len(coldReports) != 3 {
		t.Fatalf("cold run produced %d cell reports, want 3", len(coldReports))
	}

	st2, started, err := svc.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !started || st2.ID != st.ID {
		t.Fatalf("rerun submit: started=%v id=%s, want restart of %s", started, st2.ID, st.ID)
	}
	warm := waitState(t, svc, st.ID, JobDone)
	if warm.Runs != cold.Runs+1 {
		t.Fatalf("runs = %d, want %d", warm.Runs, cold.Runs+1)
	}
	if warm.Memo == nil || warm.Memo.Misses() != 0 {
		t.Fatalf("warm job memo %+v, want zero misses (served from shared memo)", warm.Memo)
	}
	if warm.Memo.Hits() == 0 {
		t.Fatalf("warm job memo %+v, want hits", warm.Memo)
	}

	warmRows, err := core.ReadJSONLRows(filepath.Join(svc.cfg.SpoolDir, st.ID, "rows.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	warmReports := cellReports(t, warmRows)
	if len(warmReports) != len(coldReports) {
		t.Fatalf("warm run produced %d cell reports, want %d", len(warmReports), len(coldReports))
	}
	for hash, want := range coldReports {
		if warmReports[hash] != want {
			t.Fatalf("cell %s: warm report differs from cold", hash)
		}
	}
}

func TestSubmitScenarioWrappedAsSuite(t *testing.T) {
	svc := newTestService(t, Config{})
	sc := testSuite("single", 5).Base
	sc.Populations = []int{5, 10}
	data, err := core.CanonicalJSON(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, started, err := svc.Submit(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if !started || st.Cells != 1 {
		t.Fatalf("scenario submit: started=%v cells=%d, want a fresh 1-cell job", started, st.Cells)
	}
	final := waitState(t, svc, st.ID, JobDone)
	if final.Done != 1 {
		t.Fatalf("final %+v, want 1 done cell", final)
	}
}

func TestSubmitRejectsGarbage(t *testing.T) {
	svc := newTestService(t, Config{})
	if _, _, err := svc.Submit([]byte(`{"nonsense": true}`), false); err == nil {
		t.Fatal("garbage submission accepted")
	}
	if _, _, err := svc.Submit([]byte(`not json`), false); err == nil {
		t.Fatal("non-JSON submission accepted")
	}
	// A structurally valid suite with an invalid scenario fails expansion.
	if _, _, err := svc.Submit([]byte(`{"base": {}}`), false); err == nil {
		t.Fatal("empty-scenario suite accepted")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := mustJSONSuite(t, testSuite("http", 5, 10))
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Follow the row stream to completion: 2 cell rows + 1 footer.
	follow, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/rows?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer follow.Body.Close()
	var rows []core.SuiteRow
	scanner := bufio.NewScanner(follow.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for scanner.Scan() {
		if len(strings.TrimSpace(scanner.Text())) == 0 {
			continue
		}
		var row core.SuiteRow
		if err := json.Unmarshal(scanner.Bytes(), &row); err != nil {
			t.Fatalf("bad streamed row %q: %v", scanner.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("followed %d rows, want 3 (2 cells + footer)", len(rows))
	}
	if rows[len(rows)-1].Status != core.CellStatusFooter {
		t.Fatalf("stream did not end with the footer: %+v", rows[len(rows)-1])
	}

	// Status, list, metrics, health.
	stResp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(stResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if got.State != JobDone {
		t.Fatalf("status after stream end = %q, want done", got.State)
	}
	list, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if list.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", list.StatusCode)
	}
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, metrics)); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"burstlabd_jobs{state=\"done\"} 1", "burstlabd_memo_misses_total", "burstlabd_memo_entries"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", health.StatusCode)
	}

	// Unknown job → 404; wrong method → 405.
	nf, _ := http.Get(ts.URL + "/api/v1/jobs/deadbeef")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", nf.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestDrainCheckpointsAndRestartResumes is the SIGTERM-drain acceptance
// test (run under -race in CI): jobs are interrupted mid-run by an
// expired drain deadline, every already-finished cell's row survives in
// the spool, and a new service over the same spool resumes the jobs to
// a final row set bit-identical to an uninterrupted batch run.
func TestDrainCheckpointsAndRestartResumes(t *testing.T) {
	spool := t.TempDir()
	suites := []core.Suite{
		testSuite("drain-a", 10, 20, 30),
		testSuite("drain-b", 15, 25, 35),
	}

	svc, err := New(Config{SpoolDir: spool, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(suites))
	for i, s := range suites {
		st, _, err := svc.Submit(mustJSONSuite(t, s), false)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	// Give the workers a moment to start, then drain with an expired
	// deadline: running jobs are checkpointed immediately.
	time.Sleep(50 * time.Millisecond)
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Close(expired); err != nil {
		t.Fatal(err)
	}
	if !svc.Draining() {
		t.Fatal("service not draining after Close")
	}
	if _, _, err := svc.Submit(mustJSONSuite(t, testSuite("late", 5)), false); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	// No lost or torn rows: every spooled row parses and belongs to the
	// job's cell set, with no duplicate completed cells.
	for i, s := range suites {
		cells, err := s.Expand()
		if err != nil {
			t.Fatal(err)
		}
		valid := map[string]bool{}
		for _, c := range cells {
			valid[c.Hash] = true
		}
		path := filepath.Join(spool, ids[i], "rows.jsonl")
		if _, err := os.Stat(path); os.IsNotExist(err) {
			continue // job never started; nothing spooled yet
		}
		st, err := core.ReadJSONLResume(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Malformed != 0 {
			t.Fatalf("job %s: %d torn lines after graceful drain, want 0", ids[i], st.Malformed)
		}
		for h := range st.Done {
			if !valid[h] {
				t.Fatalf("job %s: spooled row for unknown cell %s", ids[i], h)
			}
		}
	}

	// Restart over the same spool: interrupted jobs resume and finish.
	svc2 := newTestService(t, Config{SpoolDir: spool, JobWorkers: 2})
	for i, s := range suites {
		final := waitState(t, svc2, ids[i], JobDone)
		if final.Failed != 0 {
			t.Fatalf("job %s finished with %d failed cells", ids[i], final.Failed)
		}

		rows, err := core.ReadJSONLRows(filepath.Join(spool, ids[i], "rows.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		got := cellReports(t, rows)

		// Uninterrupted reference run through the same facade pipeline.
		ref, err := burst.RunSuite(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref.Rows) {
			t.Fatalf("job %s: %d completed cells after resume, want %d", ids[i], len(got), len(ref.Rows))
		}
		for _, row := range ref.Rows {
			want, err := json.Marshal(row.Report)
			if err != nil {
				t.Fatal(err)
			}
			if got[row.Hash] != string(want) {
				t.Fatalf("job %s cell %s: resumed report differs from uninterrupted run", ids[i], row.Hash)
			}
		}
	}
}

// TestRecoveryRegistersTerminalJobs pins restart bookkeeping: finished
// jobs come back as done (with their persisted stats) without re-running.
func TestRecoveryRegistersTerminalJobs(t *testing.T) {
	spool := t.TempDir()
	svc, err := New(Config{SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	spec := mustJSONSuite(t, testSuite("recover", 5))
	st, _, err := svc.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc, st.ID, JobDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	svc2 := newTestService(t, Config{SpoolDir: spool})
	got, err := svc2.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobDone || got.Runs != final.Runs {
		t.Fatalf("recovered job %+v, want done with runs=%d", got, final.Runs)
	}
	if got.Memo == nil || *got.Memo != *final.Memo {
		t.Fatalf("recovered memo %+v != persisted %+v", got.Memo, final.Memo)
	}
	// Resubmitting does not re-run it.
	st2, started, err := svc2.Submit(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if started || st2.State != JobDone {
		t.Fatalf("resubmit after recovery: started=%v state=%s, want existing done job", started, st2.State)
	}
}
