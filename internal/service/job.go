// Package service implements burstlabd's capacity-planning service: an
// HTTP daemon that queues POSTed Scenario/Suite JSON as content-addressed
// jobs, executes them on a bounded worker pool through the suite engine,
// and shares one process-lifetime bounded stage memo across all jobs so
// repeat what-if queries are served from cache. Per-job rows spool to
// disk as JSON Lines, which makes jobs stream-followable, reconnectable,
// and resumable by cell content hash after a crash or restart.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// JobQueued marks a job admitted but not yet started (including
	// jobs recovered from the spool at startup).
	JobQueued JobState = "queued"
	// JobRunning marks a job executing on a worker.
	JobRunning JobState = "running"
	// JobDone marks a completed job; Failed counts cells that errored
	// under the "continue" policy.
	JobDone JobState = "done"
	// JobFailed marks a job whose run returned an error (fail-fast cell
	// failure, invalid suite, spool I/O).
	JobFailed JobState = "failed"
	// JobInterrupted marks a job checkpointed by a drain: its finished
	// rows are flushed to the spool and a restarted daemon resumes the
	// rest. Never persisted — an interrupted job has no terminal status
	// file, which is exactly what recovery looks for.
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is a persisted end state.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// JobStatus is a job's externally visible snapshot, served on the
// status endpoints and persisted as the spool's terminal status file.
type JobStatus struct {
	// ID is the job's content address: the hash of the canonical suite
	// JSON. Resubmitting the same suite yields the same ID.
	ID string `json:"id"`
	// Name is the suite (or wrapped scenario) label.
	Name string `json:"name,omitempty"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Cells is the expanded cell count.
	Cells int `json:"cells,omitempty"`
	// Done counts finished cells of the current (or last) run,
	// including resumed-skip cells.
	Done int `json:"done,omitempty"`
	// Skipped counts cells served from the spool by resume.
	Skipped int `json:"skipped,omitempty"`
	// Failed counts cells recorded as failed under the continue policy.
	Failed int `json:"failed,omitempty"`
	// Runs counts execution attempts, so a resumed job is visible.
	Runs int `json:"runs,omitempty"`
	// Error carries the run error of a failed job.
	Error string `json:"error,omitempty"`
	// Memo holds the job's stage-cache counters: hits/misses/evictions
	// observed by this job's view of the shared process-lifetime memo.
	Memo *core.MemoStats `json:"memo,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt stamp the lifecycle.
	SubmittedAt time.Time  `json:"submitted_at,omitempty"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// event is one notification published to a job's subscribers.
type event struct {
	kind string // "row" or "status"
	data []byte // the row or status JSON, one line, no trailing newline
}

// job is the server-side state of one submitted suite.
type job struct {
	id    string
	suite core.Suite
	dir   string // spool directory
	rows  string // rows.jsonl path

	mu     sync.Mutex
	status JobStatus
	subs   map[int]chan event
	nextID int
}

const subBuffer = 256

func newJob(id string, suite core.Suite, dir, rowsPath string, name string) *job {
	return &job{
		id:    id,
		suite: suite,
		dir:   dir,
		rows:  rowsPath,
		status: JobStatus{
			ID:          id,
			Name:        name,
			State:       JobQueued,
			SubmittedAt: time.Now().UTC(),
		},
		subs: map[int]chan event{},
	}
}

// Status returns a copy of the job's current snapshot.
func (j *job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status under the job lock and publishes the new
// snapshot to subscribers.
func (j *job) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	data, err := json.Marshal(j.status)
	j.mu.Unlock()
	if err == nil {
		j.publish(event{kind: "status", data: data})
	}
}

// publish fans an event out to every subscriber. A subscriber whose
// buffer is full is dropped (channel closed): a follower that cannot
// keep up re-fetches the spool file rather than stalling the suite.
func (j *job) publish(ev event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(j.subs, id)
		}
	}
}

// subscribe registers a follower and returns the bytes of every row
// already spooled, the event channel, a cancel function, and whether
// the job is already terminal. The snapshot and the registration happen
// under one lock acquisition with respect to row writes, so the caller
// sees every row exactly once: first the file prefix, then the channel.
func (j *job) subscribe() (spooled []byte, ch chan event, cancel func(), terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.rows)
	if err != nil {
		data = nil
	}
	if j.status.State.Terminal() {
		return data, nil, func() {}, true
	}
	id := j.nextID
	j.nextID++
	ch = make(chan event, subBuffer)
	j.subs[id] = ch
	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			close(c)
			delete(j.subs, id)
		}
	}
	return data, ch, cancel, false
}

// closeSubs closes every subscriber channel (job reached a rest state).
func (j *job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
}

// spoolSink streams suite rows to the job's rows.jsonl and to live
// subscribers. The file write and the publish happen under the job
// lock, so a subscriber's initial file snapshot composes exactly with
// the events that follow. Each line is flushed by the unbuffered
// os.File write — a killed daemon loses at most the line being written,
// which the append-heal and resume readers tolerate.
type spoolSink struct {
	j *job
	f *os.File
}

// openSpoolSink opens the job's rows file for appending, healing a torn
// trailing line left by a previous kill so the next row starts clean.
func openSpoolSink(j *job) (*spoolSink, error) {
	f, err := os.OpenFile(j.rows, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open spool: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("service: open spool: %w", err)
	}
	if st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("service: open spool: %w", err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("service: open spool: %w", err)
			}
		}
	}
	return &spoolSink{j: j, f: f}, nil
}

// Write implements core.ReportSink.
func (s *spoolSink) Write(row core.SuiteRow) error {
	data, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("service: encode row: %w", err)
	}
	line := append(data, '\n')

	s.j.mu.Lock()
	_, werr := s.f.Write(line)
	if werr == nil {
		for id, ch := range s.j.subs {
			select {
			case ch <- event{kind: "row", data: data}:
			default:
				close(ch)
				delete(s.j.subs, id)
			}
		}
	}
	s.j.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("service: write row: %w", werr)
	}
	return nil
}

// Close implements core.ReportSink.
func (s *spoolSink) Close() error { return s.f.Close() }
