# Development targets. `make check` is the local tier-1 gate (CI's test
# job runs the same steps with `go test -short`); `make bench` maintains
# the solver performance trajectory in BENCH_solver.json so optimization
# PRs have a baseline to compare against.

GO ?= go

.PHONY: check build test vet fmt-check race faults xvalidate scenario suite serve-smoke bench benchgate

check: vet fmt-check build test

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-
# clean; CI runs the same check.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the goroutine-parallel paths (replica-parallel TPC-W
# runs, parallel SpMV) under the race detector; -short skips the
# Short-guarded heavy tests (K=3 cross-validation, large solver cases)
# whose numeric kernels are 10-20x slower under instrumentation — the
# race-relevant parallelism is covered by the replica and SpMV tests.
# The explicit -timeout gives internal/mapqn headroom: its matrix-free
# equivalence tests alone run ~10x slower under the race detector and
# can brush Go's default 10m per-package limit on slower machines.
race:
	$(GO) test -race -short -timeout 30m ./...

# faults runs the deterministic fault-injection suite under the race
# detector: every failure policy (fail-fast, continue, retry-with-
# backoff, panic recovery) and the solver-degradation paths exercised
# with errors, panics, and delays injected at each pipeline stage via
# internal/faultinject.
faults:
	$(GO) test -race -run 'TestFault' ./...

# xvalidate is the sim-vs-solver smoke check: a K=3 replicated simulation
# cross-validated against the exact MAP network within the documented
# tolerance (see internal/validate).
xvalidate:
	$(GO) test -run 'CrossValidation' -v ./internal/validate/

# scenario is the declarative-pipeline smoke check: the committed example
# scenario runs end to end through cmd/burstlab (simulate, characterize,
# fit, solve, cross-validate) and prints its report.
scenario:
	$(GO) run ./cmd/burstlab -scenario examples/scenariofile/scenario.json

# suite is the batch-engine smoke check: the committed example suite
# (database-tier I x population grid) expands, runs over the worker
# pool with stage memoization, and streams its per-cell rows.
suite:
	$(GO) run ./cmd/burstlab -suite examples/suite/suite.json

# serve-smoke is the capacity-planning-service smoke check: start a
# burstlabd daemon, submit the committed examples/service suite through
# `burstlab -remote` (cold, then rerun against the warm shared memo),
# and require the streamed rows to be bit-identical to a local batch
# run, ending with a clean SIGTERM drain.
serve-smoke:
	./scripts/serve-smoke.sh

# bench runs the solver benchmarks — the end-to-end K=2/K=3/K=4 CTMC
# solves, the warm/cold population sweep, the suite-engine batch run,
# the multiclass MVA solvers (exact lattice and Schweitzer/Bard), and
# the generator microbenches (assembly strategies, CSR vs matrix-free
# backends) — and archives the numbers (ns/op, states, nnz, allocs,
# throughput) as JSON. -benchtime=1x for the seconds-scale solves (a
# single iteration is already deterministic enough for a trajectory);
# the microsecond-scale MulticlassMVA benches run 50 iterations in a
# separate invocation because their single-run timings swing ~2x with
# scheduler noise, which would make the benchgate flaky.
bench:
	$(GO) test -run=NONE -bench='SolveThreeTier|SolveDecomp|Solver|RunSuite|ServiceRepeatQuery' -benchmem -benchtime=1x . > .bench_root.txt
	$(GO) test -run=NONE -bench='MulticlassMVA' -benchmem -benchtime=50x . >> .bench_root.txt
	$(GO) test -run=NONE -bench='GeneratorAssembly|GeneratorBackends' -benchmem ./internal/mapqn/ > .bench_mapqn.txt
	cat .bench_root.txt .bench_mapqn.txt | $(GO) run ./cmd/benchjson > BENCH_solver.json
	rm -f .bench_root.txt .bench_mapqn.txt
	cat BENCH_solver.json

# benchgate is the perf-regression gate: re-run the bench suite into a
# scratch document and fail if any benchmark's ns/op or B/op regressed
# more than 25% against the committed BENCH_solver.json. CI runs this
# on every push; run it locally before optimization PRs.
benchgate:
	$(GO) test -run=NONE -bench='SolveThreeTier|SolveDecomp|Solver|RunSuite|ServiceRepeatQuery' -benchmem -benchtime=1x . > .bench_root.txt
	$(GO) test -run=NONE -bench='MulticlassMVA' -benchmem -benchtime=50x . >> .bench_root.txt
	$(GO) test -run=NONE -bench='GeneratorAssembly|GeneratorBackends' -benchmem ./internal/mapqn/ > .bench_mapqn.txt
	cat .bench_root.txt .bench_mapqn.txt | $(GO) run ./cmd/benchjson > .bench_fresh.json
	rm -f .bench_root.txt .bench_mapqn.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_solver.json -fresh .bench_fresh.json
	rm -f .bench_fresh.json
