// Command paperrepro regenerates the tables and figures of "Burstiness in
// Multi-Tier Applications: Symptoms, Causes, and New Models" (Middleware
// 2008) on the simulated testbed and prints paper-vs-measured tables.
//
// Usage:
//
//	paperrepro [-experiment all|fig1|table1|fig4|fig5|fig6|fig7|fig10|fig11|fig12|setup]
//	           [-scale quick|bench|full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/tpcw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "which artifact to regenerate (all, fig1, table1, fig4, fig5, fig6, fig7, fig10, fig11, fig12, setup)")
	scaleName := flag.String("scale", "quick", "experiment scale: quick, bench or full")
	seed := flag.Int64("seed", 11, "base random seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "bench":
		scale = experiments.Quick()
		scale.SimDuration = 1200
		scale.FitDuration = 2400
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	runners := map[string]func(int64, experiments.Scale) error{
		"fig1":   printFigure1,
		"table1": printTable1,
		"fig4":   printFigure4,
		"fig5":   printFigure5,
		"fig6":   printFigure6,
		"fig7":   printFigure7,
		"fig10":  printFigure10,
		"fig11":  printFigure11,
		"fig12":  printFigure12,
		"setup":  printSetup,
	}
	if *experiment == "all" {
		for _, name := range []string{"setup", "fig1", "table1", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11", "fig12"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](*seed, scale); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return fn(*seed, scale)
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printSetup(int64, experiments.Scale) error {
	fmt.Println("Table 2 substitute — simulated testbed components:")
	fmt.Println("  clients: closed EB sessions, exponential think time (default Z = 0.5 s)")
	fmt.Println("  front server: processor-sharing CPU, per-type page-build demands")
	fmt.Println("  database server: processor-sharing CPU, per-query demands,")
	fmt.Println("    Markov-modulated contention epochs triggered by Best Seller/Home queries")
	fmt.Println()
	fmt.Println("Table 3 — the 14 TPC-W transactions and per-mix visit shares:")
	w := tab()
	fmt.Fprintln(w, "transaction\tgroup\tbrowsing\tshopping\tordering")
	b, s, o := tpcw.BrowsingMix(), tpcw.ShoppingMix(), tpcw.OrderingMix()
	for t := tpcw.Transaction(0); t < tpcw.NumTransactions; t++ {
		group := "Ordering"
		if t.IsBrowsing() {
			group = "Browsing"
		}
		fmt.Fprintf(w, "%v\t%s\t%.4f\t%.4f\t%.4f\n", t, group, b.Weights[t], s.Weights[t], o.Weights[t])
	}
	return w.Flush()
}

func printFigure1(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Figure1(seed, scale)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "profile\tmean\tSCV\tI (measured)\tI (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\t%.1f\t%.1f\n", r.Profile, r.Mean, r.SCV, r.I, r.PaperI)
	}
	return w.Flush()
}

func printTable1(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Table1(seed, scale)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "workload\tI\tmean@0.5\tp95@0.5\tmean@0.8\tp95@0.8")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Profile, r.I, r.Mean50, r.P95At50, r.Mean80, r.P95At80)
		fmt.Fprintf(w, "  (paper)\t\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.PaperMean50, r.PaperP95At50, r.PaperMean80, r.PaperP95At80)
	}
	return w.Flush()
}

func printFigure4(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Figure4(seed, scale, nil)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mix\tEBs\tTPUT\tU_front\tU_db")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\t%.2f\n", r.Mix, r.EBs, r.TPUT, r.UtilFront, r.UtilDB)
	}
	return w.Flush()
}

func printFigure5(seed int64, scale experiments.Scale) error {
	stats, _, err := experiments.Figure5And6(seed, scale)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mix\tmean U_front\tmean U_db\tP90 U_db\tmax U_db\tswitch fraction")
	for _, s := range stats {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			s.Mix, s.MeanFront, s.MeanDB, s.P90DB, s.MaxDB, s.SwitchFraction)
	}
	return w.Flush()
}

func printFigure6(seed int64, scale experiments.Scale) error {
	stats, _, err := experiments.Figure5And6(seed, scale)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mix\tQdb mean\tQdb P10\tQdb P90\tQdb max")
	for _, s := range stats {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.0f\n",
			s.Mix, s.MeanQueueDB, s.QueueP10, s.QueueP90, s.MaxQueueDB)
	}
	return w.Flush()
}

func printFigure7(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Figure7And8(seed, scale)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mix\ttype\tshare\tmean in-system\tmax in-system\tcorr(DB queue)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.1f\t%.0f\t%.2f\n",
			r.Mix, r.Type, r.Share, r.MeanInSystem, r.MaxInSystem, r.CorrWithDBQueue)
	}
	return w.Flush()
}

func printFigure10(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Figure10(seed, scale, nil)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mix\tEBs\tmeasured\tMVA\terr%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\n", r.Mix, r.EBs, r.Measured, r.MVA, 100*r.MVAErr)
	}
	return w.Flush()
}

func printFigure11(seed int64, scale experiments.Scale) error {
	rows, err := experiments.Figure11(seed, scale, nil)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "EBs\tmeasured\tmodel-Z0.5\terr%\tmodel-Z7\terr%\tpaper err% (Z0.5/Z7)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f/%.1f\n",
			r.EBs, r.Measured, r.ModelZ05, 100*r.ErrZ05, r.ModelZ7, 100*r.ErrZ7,
			100*r.PaperErr05, 100*r.PaperErr7)
	}
	return w.Flush()
}

func printFigure12(seed int64, scale experiments.Scale) error {
	results, err := experiments.Figure12(seed, scale, nil)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Printf("%s: I_front = %.1f (paper %.0f), I_db = %.1f (paper %.0f)\n",
			res.Mix, res.IFront, res.PaperIF, res.IDB, res.PaperID)
		w := tab()
		fmt.Fprintln(w, "EBs\tmeasured\tMAP model\terr%\tMVA\terr%")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.EBs, r.Measured, r.MAPModel, 100*r.MAPErr, r.MVA, 100*r.MVAErr)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}
