// Command mtrace1 simulates the M/Trace/1 queue of Section 2: Poisson
// arrivals into a FCFS server whose service times are replayed, in order,
// from a trace read on stdin (one service time per line, e.g. the output
// of burstgen).
//
// Usage:
//
//	burstgen -profile single | mtrace1 -lambda 0.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/queues"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtrace1:", err)
		os.Exit(1)
	}
}

func run() error {
	lambda := flag.Float64("lambda", 0.5, "Poisson arrival rate")
	seed := flag.Int64("seed", 1, "random seed for arrivals")
	flag.Parse()

	var tr trace.T
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return fmt.Errorf("bad sample %q: %w", line, err)
		}
		tr = append(tr, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	res, err := queues.MTrace1(tr, *lambda, xrand.New(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("jobs=%d lambda=%.4g util=%.3f meanResponse=%.4f p95Response=%.4f meanWait=%.4f\n",
		res.Jobs, *lambda, res.Utilization, res.MeanResponse, res.P95Response, res.MeanWait)
	return nil
}
