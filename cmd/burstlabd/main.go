// Command burstlabd is the capacity-planning service: a long-running
// HTTP daemon over the suite engine. Clients POST Scenario or Suite
// JSON and get back a content-addressed job ID; jobs queue into a
// bounded admission buffer, execute on a small pool of job workers, and
// stream result rows (JSON Lines or SSE) as cells finish. All jobs
// share one process-lifetime, size-bounded stage memo, so repeat
// what-if queries — the paper's capacity-planning workflow — are served
// from cache instead of re-paying fit and solve costs.
//
// Usage:
//
//	burstlabd -spool /var/lib/burstlab/spool
//	burstlabd -spool spool -addr 127.0.0.1:8344 -jobs 4
//	burstlabd -spool spool -addr 127.0.0.1:0 -addr-file burstlabd.addr
//
// Every job spools its rows to <spool>/<job-id>/rows.jsonl, flushed per
// cell. The spool is the daemon's only state: on SIGTERM/SIGINT the
// daemon drains — stops admitting, gives running jobs -drain-timeout to
// finish, then checkpoints them mid-suite — and a restarted daemon
// pointed at the same spool recovers finished jobs and resumes
// interrupted ones by cell content hash, re-running only cells without
// a completed row. Submitting the identical suite again returns the
// existing job; with ?rerun=1 it re-executes against the warm memo.
//
// Endpoints (see internal/service): POST /api/v1/jobs, GET
// /api/v1/jobs[/{id}[/rows|/events]], /metrics, /healthz. With -pprof
// the daemon additionally serves Go's runtime profiles under
// /debug/pprof/ (CPU, heap, goroutine, ...) for profiling solver and
// service hot paths in place; the endpoints are off by default because
// they expose process internals and a CPU profile costs real cycles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		spool        = flag.String("spool", "", "spool directory for job state (required)")
		jobs         = flag.Int("jobs", 2, "concurrently executing jobs")
		queue        = flag.Int("queue", 16, "admission queue depth (submissions beyond it get 503)")
		memoEntries  = flag.Int("memo-entries", 4096, "shared memo bound: max cached stage results (<0 unbounded)")
		memoBytes    = flag.Int64("memo-bytes", 256<<20, "shared memo bound: max estimated cache bytes (<0 unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGTERM before being checkpointed")
		quiet        = flag.Bool("quiet", false, "suppress operational logging")
		pprofOn      = flag.Bool("pprof", false, "serve Go runtime profiles at /debug/pprof/ (off by default; exposes process internals)")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *spool, *jobs, *queue, *memoEntries, *memoBytes, *drainTimeout, *quiet, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "burstlabd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, spool string, jobs, queue, memoEntries int, memoBytes int64, drainTimeout time.Duration, quiet, pprofOn bool) error {
	if spool == "" {
		return errors.New("-spool is required")
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	svc, err := service.New(service.Config{
		SpoolDir:    spool,
		JobWorkers:  jobs,
		QueueDepth:  queue,
		MemoEntries: memoEntries,
		MemoBytes:   memoBytes,
		Logf:        logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	logf("burstlabd listening on %s (spool %s, %d job workers, queue %d)", bound, spool, jobs, queue)

	handler := svc.Handler()
	if pprofOn {
		// The service handler owns every route it knows; profiling mounts
		// beside it in a parent mux. Explicit registrations (rather than
		// the net/http/pprof import side effect) keep the daemon off the
		// global DefaultServeMux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = mux
		logf("pprof profiling endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logf("signal received, draining (timeout %s)", drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Close(drainCtx); err != nil {
		logf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	logf("drained, exiting")
	return nil
}
