package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	burst "repro"
	"repro/internal/core"
	"repro/internal/service"
)

// killSuite is slow enough (several MAP sweeps) that a SIGKILL lands
// mid-run, and fully deterministic so resumed rows must match an
// uninterrupted run bit for bit.
func killSuite() burst.Suite {
	return burst.Suite{
		Name: "kill-restart",
		Base: burst.Scenario{
			Name:      "kill-restart",
			ThinkTime: 0.5,
			Tiers: []burst.TierSpec{
				{Name: "front", Mean: 0.006, IndexOfDispersion: 3, P95: 0.015},
				{Name: "db", Mean: 0.009, IndexOfDispersion: 40, P95: 0.02},
			},
			Solvers: []burst.SolverKind{burst.SolverMAP, burst.SolverMVA, burst.SolverBounds},
		},
		Grid:    burst.Grid{Populations: [][]int{{20}, {35}, {50}, {65}, {80}, {95}}},
		Workers: 1,
	}
}

// buildBinary compiles a command of this module into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// startDaemon launches burstlabd and waits for its bound address.
func startDaemon(t *testing.T, bin, spool, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(bin,
		"-spool", spool,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-jobs", "1",
		"-drain-timeout", "5s",
	)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("daemon logs:\n%s", logs.String())
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && strings.TrimSpace(string(data)) != "" {
			return cmd, strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s\nlogs:\n%s", addrFile, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func submitSuite(t *testing.T, addr string, s burst.Suite) service.JobStatus {
	t.Helper()
	body, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestKillAndRestartResumesJob is the crash-recovery acceptance test:
// SIGKILL the daemon mid-run, restart it on the same spool, and the job
// resumes by cell content hash to a row set bit-identical to an
// uninterrupted run.
func TestKillAndRestartResumesJob(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test; skipped in -short")
	}
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	addrFile := filepath.Join(dir, "addr")
	bin := buildBinary(t, dir, "repro/cmd/burstlabd", "burstlabd")

	cmd, addr := startDaemon(t, bin, spool, addrFile)
	suite := killSuite()
	st := submitSuite(t, addr, suite)
	rowsPath := filepath.Join(spool, st.ID, "rows.jsonl")

	// Wait for at least one completed cell, then SIGKILL mid-run.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if rs, err := core.ReadJSONLResume(rowsPath); err == nil && len(rs.Done) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before kill deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	interrupted, err := core.ReadJSONLResume(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(interrupted.Done) == len(mustExpand(t, suite)) {
		t.Log("job finished before the kill; resume path exercises the all-skipped case")
	}

	// Restart on the same spool: the job must be recovered and resumed
	// without resubmission.
	_, addr2 := startDaemon(t, bin, spool, addrFile)
	waitDone(t, addr2, st.ID)

	rows, err := core.ReadJSONLRows(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range rows {
		if row.Status == core.CellStatusOK && row.Report != nil {
			data, err := json.Marshal(row.Report)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := got[row.Hash]; dup {
				t.Fatalf("cell %s appears twice after resume", row.Hash)
			}
			got[row.Hash] = string(data)
		}
	}

	ref, err := burst.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref.Rows) {
		t.Fatalf("resumed job has %d completed cells, want %d", len(got), len(ref.Rows))
	}
	for _, row := range ref.Rows {
		want, err := json.Marshal(row.Report)
		if err != nil {
			t.Fatal(err)
		}
		if got[row.Hash] != string(want) {
			t.Fatalf("cell %s (%s): resumed report differs from uninterrupted run", row.Hash, row.Name)
		}
	}
}

// TestSIGTERMDrainExitsCleanly pins the graceful path end to end: a
// daemon with an in-flight job exits 0 on SIGTERM within its drain
// budget and leaves only cleanly parseable spool rows behind.
func TestSIGTERMDrainExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test; skipped in -short")
	}
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	addrFile := filepath.Join(dir, "addr")
	bin := buildBinary(t, dir, "repro/cmd/burstlabd", "burstlabd")

	cmd, addr := startDaemon(t, bin, spool, addrFile)
	st := submitSuite(t, addr, killSuite())

	time.Sleep(300 * time.Millisecond) // let the job get in flight
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit within 60s of SIGTERM")
	}

	rowsPath := filepath.Join(spool, st.ID, "rows.jsonl")
	if _, err := os.Stat(rowsPath); err == nil {
		rs, err := core.ReadJSONLResume(rowsPath)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Malformed != 0 {
			t.Fatalf("%d torn rows after graceful drain, want 0", rs.Malformed)
		}
	}
}

func mustExpand(t *testing.T, s burst.Suite) []burst.SuiteCell {
	t.Helper()
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func waitDone(t *testing.T, addr, id string) {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/api/v1/jobs/%s", addr, id))
		if err == nil {
			var st service.JobStatus
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil {
				switch st.State {
				case service.JobDone:
					return
				case service.JobFailed:
					t.Fatalf("job failed after restart: %s", st.Error)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish after restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
