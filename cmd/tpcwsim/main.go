// Command tpcwsim runs TPC-W testbed simulations — two-tier by default,
// N-tier with -tiers, replicated with -replicas — and prints the headline
// metrics plus, optionally, the coarse monitoring streams as CSV
// (consumable by the dispersion and capplan tools). With -validate it
// closes the paper's loop: the simulated per-tier samples are fed through
// the estimation pipeline into the exact K-station MAP network solver and
// the predictions are compared back against the simulation.
//
// Usage:
//
//	tpcwsim -mix browsing -ebs 100 -duration 1800
//	tpcwsim -mix browsing -ebs 50 -z 7 -csv front > front.csv
//	tpcwsim -mix shopping -tiers 3 -ebs 60 -replicas 5
//	tpcwsim -mix ordering -tiers 3 -ebs 30 -replicas 3 -validate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tpcw"
	"repro/internal/trace"
	"repro/internal/validate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwsim:", err)
		os.Exit(1)
	}
}

func run() error {
	mixName := flag.String("mix", "browsing", "transaction mix: browsing, shopping or ordering")
	ebs := flag.Int("ebs", 100, "number of emulated browsers")
	z := flag.Float64("z", 0.5, "mean think time in seconds")
	duration := flag.Float64("duration", 1800, "simulated seconds")
	warmup := flag.Float64("warmup", 120, "warm-up seconds excluded from analysis (negative for exactly zero)")
	cooldown := flag.Float64("cooldown", 60, "cool-down seconds excluded from analysis (negative for exactly zero)")
	seed := flag.Int64("seed", 1, "random seed")
	tiers := flag.Int("tiers", 2, "number of service tiers (front, app..., db)")
	replicas := flag.Int("replicas", 1, "independently seeded replicas to run (with -validate, unset means 3)")
	workers := flag.Int("workers", 0, "max goroutines for replicas (0 = GOMAXPROCS)")
	doValidate := flag.Bool("validate", false, "cross-validate the simulation against the MAP and MVA models")
	csvTier := flag.String("csv", "", "emit monitoring CSV (utilization,completions) for the named tier (front, app..., db)")
	flag.Parse()

	if *replicas < 1 {
		return fmt.Errorf("replicas %d must be >= 1", *replicas)
	}
	var mix tpcw.Mix
	switch *mixName {
	case "browsing":
		mix = tpcw.BrowsingMix()
	case "shopping":
		mix = tpcw.ShoppingMix()
	case "ordering":
		mix = tpcw.OrderingMix()
	default:
		return fmt.Errorf("unknown mix %q", *mixName)
	}

	tierCfgs, err := tpcw.DefaultTiers(mix, *tiers)
	if err != nil {
		return err
	}
	// On the CLI an explicit -warmup 0 / -cooldown 0 means "analyze the
	// whole run", not "use the library default" — map it to the sentinel.
	if *warmup == 0 && flagSet("warmup") {
		*warmup = tpcw.ZeroWindow
	}
	if *cooldown == 0 && flagSet("cooldown") {
		*cooldown = tpcw.ZeroWindow
	}
	cfg := tpcw.ConfigN{
		Mix: mix, Tiers: tierCfgs,
		EBs: *ebs, ThinkTime: *z, Seed: *seed,
		Duration: *duration, Warmup: *warmup, Cooldown: *cooldown,
	}

	if *doValidate {
		if *csvTier != "" {
			return fmt.Errorf("-csv cannot be combined with -validate (the validation report is not CSV)")
		}
		// A 1-replica validation carries no confidence interval; unless
		// the user asked for a replica count, let the library default
		// (3) apply so the report's ± columns mean something.
		reps := *replicas
		if !flagSet("replicas") {
			reps = 0
		}
		rep, err := validate.CrossValidate(cfg, validate.Options{Replicas: reps, Workers: *workers})
		if err != nil {
			return err
		}
		printValidation(rep)
		return nil
	}

	if *replicas > 1 {
		rr, err := tpcw.RunReplicas(cfg, *replicas, *workers)
		if err != nil {
			return err
		}
		if *csvTier != "" {
			return emitTierCSV(rr.TierNames, rr.TierSamples, *csvTier)
		}
		printReplicas(mix, cfg, rr)
		return nil
	}

	res, err := tpcw.RunN(cfg)
	if err != nil {
		return err
	}
	if *csvTier != "" {
		return emitTierCSV(res.TierNames, res.TierSamples, *csvTier)
	}
	fmt.Printf("mix=%s tiers=%d ebs=%d z=%.2fs duration=%.0fs\n", mix.Name, len(res.TierNames), *ebs, *z, *duration)
	fmt.Printf("throughput=%.2f tx/s  meanResponse=%.4fs  p95Response=%.4fs\n",
		res.Throughput, res.MeanResponse, res.P95Response)
	for i, name := range res.TierNames {
		fmt.Printf("tier %-6s utilization=%.3f contention=%.3f\n",
			name, res.AvgUtil[i], res.ContentionFraction[i])
	}
	fmt.Println("per-type completions:")
	for t := tpcw.Transaction(0); t < tpcw.NumTransactions; t++ {
		fmt.Printf("  %-22v %8d (%.3f)\n", t, res.CompletedByType[t],
			float64(res.CompletedByType[t])/float64(res.Completed))
	}
	return nil
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printReplicas(mix tpcw.Mix, cfg tpcw.ConfigN, rr *tpcw.ReplicaResult) {
	fmt.Printf("mix=%s tiers=%d ebs=%d replicas=%d\n", mix.Name, len(rr.TierNames), cfg.EBs, len(rr.Results))
	fmt.Printf("throughput=%.2f ± %.2f tx/s  meanResponse=%.4f ± %.4fs\n",
		rr.Throughput.Mean, rr.Throughput.HalfWidth,
		rr.MeanResponse.Mean, rr.MeanResponse.HalfWidth)
	for i, name := range rr.TierNames {
		fmt.Printf("tier %-6s utilization=%.3f ± %.3f\n", name, rr.AvgUtil[i].Mean, rr.AvgUtil[i].HalfWidth)
	}
}

func printValidation(rep *validate.Report) {
	fmt.Printf("cross-validation at %d EBs, Z=%.2fs, %d replicas (CTMC states: %d)\n",
		rep.EBs, rep.ThinkTime, rep.Replicas, rep.States)
	fmt.Printf("throughput  sim=%.2f ± %.2f  MAP=%.2f (%+.1f%%)  MVA=%.2f (%+.1f%%)\n",
		rep.SimThroughput.Mean, rep.SimThroughput.HalfWidth,
		rep.MAPThroughput, 100*rep.MAPError, rep.MVAThroughput, 100*rep.MVAError)
	for _, tier := range rep.Tiers {
		fmt.Printf("tier %-6s U sim=%.3f ± %.3f  MAP=%.3f (%+.3f)  MVA=%.3f (%+.3f)  I=%.1f\n",
			tier.Name, tier.SimUtil.Mean, tier.SimUtil.HalfWidth,
			tier.MAPUtil, tier.MAPError, tier.MVAUtil, tier.MVAError,
			tier.Characterization.IndexOfDispersion)
	}
}

func emitTierCSV(names []string, samples []trace.UtilizationSamples, tier string) error {
	for i, name := range names {
		if name != tier {
			continue
		}
		s := samples[i]
		for k := range s.Utilization {
			if _, err := fmt.Printf("%.6f,%.1f\n", s.Utilization[k], s.Completions[k]); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown tier %q (have %v)", tier, names)
}
