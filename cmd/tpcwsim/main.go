// Command tpcwsim runs TPC-W testbed simulations — two-tier by default,
// N-tier with -tiers, replicated with -replicas — and prints the headline
// metrics plus, optionally, the coarse monitoring streams as CSV
// (consumable by the dispersion and capplan tools). With -validate it
// closes the paper's loop: the simulated per-tier samples are fed through
// the estimation pipeline into the exact K-station MAP network solver and
// the predictions are compared back against the simulation.
//
// It is a thin scenario builder: the flags assemble a declarative
// burst.Scenario (a WorkloadSpec plus the sim or crossvalidate solver)
// and burst.Run executes it — the same pipeline a committed scenario
// file runs through cmd/burstlab. Ctrl-C cancels the run cooperatively.
//
// Usage:
//
//	tpcwsim -mix browsing -ebs 100 -duration 1800
//	tpcwsim -mix browsing -ebs 50 -z 7 -csv front > front.csv
//	tpcwsim -mix shopping -tiers 3 -ebs 60 -replicas 5
//	tpcwsim -mix ordering -tiers 3 -ebs 30 -replicas 3 -validate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	burst "repro"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwsim:", err)
		os.Exit(1)
	}
}

func run() error {
	mixName := flag.String("mix", "browsing", "transaction mix: browsing, shopping or ordering")
	ebs := flag.String("ebs", "100", "comma-separated emulated-browser counts to simulate")
	z := flag.Float64("z", 0.5, "mean think time in seconds")
	duration := flag.Float64("duration", 1800, "simulated seconds")
	warmup := flag.Float64("warmup", 120, "warm-up seconds excluded from analysis (0 or negative for exactly zero)")
	cooldown := flag.Float64("cooldown", 60, "cool-down seconds excluded from analysis (0 or negative for exactly zero)")
	seed := flag.Int64("seed", 1, "random seed")
	tiers := flag.Int("tiers", 2, "number of service tiers (front, app..., db)")
	replicas := flag.Int("replicas", 1, "independently seeded replicas to run (with -validate, unset means 3)")
	workers := flag.Int("workers", 0, "max goroutines for replicas (0 = GOMAXPROCS)")
	doValidate := flag.Bool("validate", false, "cross-validate the simulation against the MAP and MVA models")
	csvTier := flag.String("csv", "", "emit monitoring CSV (utilization,completions) for the named tier (front, app..., db)")
	flag.Parse()

	if *doValidate && *csvTier != "" {
		return fmt.Errorf("-csv cannot be combined with -validate (the validation report is not CSV)")
	}
	if *replicas < 1 {
		return fmt.Errorf("replicas %d must be >= 1", *replicas)
	}
	populations, err := core.ParseIntList(*ebs)
	if err != nil {
		return fmt.Errorf("-ebs: %w", err)
	}
	if *csvTier != "" && len(populations) != 1 {
		return fmt.Errorf("-csv needs a single -ebs value (got %d populations)", len(populations))
	}

	b := burst.NewScenarioBuilder().
		Name("tpcwsim").
		ThinkTime(*z).
		Populations(populations...).
		Workload(*mixName, *tiers).
		Duration(*duration).
		Window(*warmup, flagSet("warmup"), *cooldown, flagSet("cooldown")).
		Seed(*seed).
		Workers(*workers).
		KeepSamples(*csvTier != "")
	if *doValidate {
		b.Solvers(burst.SolverCrossValidate)
		// A 1-replica validation carries no confidence interval; unless
		// the user asked for a replica count, let the scenario default
		// (3) apply so the report's ± columns mean something.
		if flagSet("replicas") {
			b.Replicas(*replicas)
		}
	} else {
		b.Solvers(burst.SolverSim)
		b.Replicas(*replicas)
	}
	sc, err := b.Build()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := burst.Run(ctx, sc)
	if err != nil {
		return err
	}

	if *csvTier != "" {
		sim := rep.Results[0].Sim
		return emitTierCSV(sim.TierNames, sim.TierSamples, *csvTier)
	}
	for _, r := range rep.Results {
		if *doValidate {
			printValidation(r)
		} else {
			printSim(*mixName, r)
		}
	}
	return nil
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printSim(mix string, r burst.PopulationReport) {
	sim := r.Sim
	fmt.Printf("mix=%s tiers=%d ebs=%d replicas=%d\n", mix, len(sim.TierNames), r.Population, sim.Replicas)
	if sim.Replicas > 1 {
		fmt.Printf("throughput=%.2f ± %.2f tx/s  meanResponse=%.4f ± %.4fs\n",
			sim.Throughput.Mean, sim.Throughput.HalfWidth,
			sim.MeanResponse.Mean, sim.MeanResponse.HalfWidth)
	} else {
		fmt.Printf("throughput=%.2f tx/s  meanResponse=%.4fs  p95Response=%.4fs\n",
			sim.Throughput.Mean, sim.MeanResponse.Mean, sim.P95Response.Mean)
	}
	for i, name := range sim.TierNames {
		fmt.Printf("tier %-6s utilization=%.3f ± %.3f  contention=%.3f\n",
			name, sim.TierUtil[i].Mean, sim.TierUtil[i].HalfWidth, sim.ContentionFraction[i].Mean)
	}
	var total int64
	for _, c := range sim.CompletedByType {
		total += c
	}
	fmt.Println("per-type completions:")
	for t, c := range sim.CompletedByType {
		fmt.Printf("  %-22v %8d (%.3f)\n", sim.TransactionNames[t], c, float64(c)/float64(total))
	}
}

func printValidation(r burst.PopulationReport) {
	v := r.Validation
	fmt.Printf("cross-validation at %d EBs, %d replicas (CTMC states: %d)\n",
		r.Population, r.Sim.Replicas, v.States)
	fmt.Printf("throughput  sim=%.2f ± %.2f  MAP=%.2f (%+.1f%%)  MVA=%.2f (%+.1f%%)\n",
		v.SimThroughput.Mean, v.SimThroughput.HalfWidth,
		v.MAPThroughput, 100*v.MAPError, v.MVAThroughput, 100*v.MVAError)
	for _, tier := range v.Tiers {
		fmt.Printf("tier %-6s U sim=%.3f ± %.3f  MAP=%.3f (%+.3f)  MVA=%.3f (%+.3f)  I=%.1f\n",
			tier.Name, tier.SimUtil.Mean, tier.SimUtil.HalfWidth,
			tier.MAPUtil, tier.MAPError, tier.MVAUtil, tier.MVAError,
			tier.IndexOfDispersion)
	}
}

func emitTierCSV(names []string, samples []trace.UtilizationSamples, tier string) error {
	for i, name := range names {
		if name != tier {
			continue
		}
		s := samples[i]
		for k := range s.Utilization {
			if _, err := fmt.Printf("%.6f,%.1f\n", s.Utilization[k], s.Completions[k]); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown tier %q (have %v)", tier, names)
}
