// Command tpcwsim runs one TPC-W testbed simulation and prints the
// headline metrics plus, optionally, the coarse monitoring streams as CSV
// (consumable by the dispersion and capplan tools).
//
// Usage:
//
//	tpcwsim -mix browsing -ebs 100 -duration 1800
//	tpcwsim -mix browsing -ebs 50 -z 7 -csv front > front.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tpcw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwsim:", err)
		os.Exit(1)
	}
}

func run() error {
	mixName := flag.String("mix", "browsing", "transaction mix: browsing, shopping or ordering")
	ebs := flag.Int("ebs", 100, "number of emulated browsers")
	z := flag.Float64("z", 0.5, "mean think time in seconds")
	duration := flag.Float64("duration", 1800, "simulated seconds")
	warmup := flag.Float64("warmup", 120, "warm-up seconds excluded from analysis")
	cooldown := flag.Float64("cooldown", 60, "cool-down seconds excluded from analysis")
	seed := flag.Int64("seed", 1, "random seed")
	csvTier := flag.String("csv", "", "emit monitoring CSV (utilization,completions) for tier: front or db")
	flag.Parse()

	var mix tpcw.Mix
	switch *mixName {
	case "browsing":
		mix = tpcw.BrowsingMix()
	case "shopping":
		mix = tpcw.ShoppingMix()
	case "ordering":
		mix = tpcw.OrderingMix()
	default:
		return fmt.Errorf("unknown mix %q", *mixName)
	}

	res, err := tpcw.Run(tpcw.Config{
		Mix: mix, EBs: *ebs, ThinkTime: *z, Seed: *seed,
		Duration: *duration, Warmup: *warmup, Cooldown: *cooldown,
	})
	if err != nil {
		return err
	}

	switch *csvTier {
	case "":
		fmt.Printf("mix=%s ebs=%d z=%.2fs duration=%.0fs\n", mix.Name, *ebs, *z, *duration)
		fmt.Printf("throughput=%.2f tx/s  meanResponse=%.4fs  p95Response=%.4fs\n",
			res.Throughput, res.MeanResponse, res.P95Response)
		fmt.Printf("utilization front=%.3f db=%.3f\n", res.AvgUtilFront, res.AvgUtilDB)
		fmt.Printf("contention fraction front=%.3f db=%.3f\n",
			res.FrontContentionFraction, res.DBContentionFraction)
		fmt.Println("per-type completions:")
		for t := tpcw.Transaction(0); t < tpcw.NumTransactions; t++ {
			fmt.Printf("  %-22v %8d (%.3f)\n", t, res.CompletedByType[t],
				float64(res.CompletedByType[t])/float64(res.Completed))
		}
		return nil
	case "front":
		return emitCSV(res.FrontSamples.Utilization, res.FrontSamples.Completions)
	case "db":
		return emitCSV(res.DBSamples.Utilization, res.DBSamples.Completions)
	default:
		return fmt.Errorf("unknown tier %q (want front or db)", *csvTier)
	}
}

func emitCSV(utils, completions []float64) error {
	for i := range utils {
		if _, err := fmt.Printf("%.6f,%.1f\n", utils[i], completions[i]); err != nil {
			return err
		}
	}
	return nil
}
