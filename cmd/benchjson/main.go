// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark runs can be archived and
// compared across commits (the Makefile's bench target writes
// BENCH_solver.json this way).
//
//	go test -run=NONE -bench='Solver' -benchmem ./... | benchjson > BENCH_solver.json
//
// Standard columns (ns/op, B/op, allocs/op) and custom b.ReportMetric
// columns ("58.52 X", "1984 states") both become fields of the
// benchmark's metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	Goos        string      `json:"goos,omitempty"`
	Goarch      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	rep := Report{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   3   123 ns/op   55.9 X   16 B/op   2 allocs/op
//
// into name, iteration count and a metrics map.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
