// Command benchgate compares a fresh benchmark run against the committed
// baseline (BENCH_solver.json) and fails when any shared benchmark's
// ns/op or B/op regressed beyond the allowed factor — the repository's
// performance-regression gate (`make benchgate`). Gating allocations
// alongside time catches a class of regressions ns/op hides on fast
// paths: an accidental per-iteration allocation that the benchmark's
// noise floor absorbs but that dominates under production GC pressure.
//
//	benchgate -baseline BENCH_solver.json -fresh fresh.json
//	benchgate -baseline BENCH_solver.json -fresh fresh.json -threshold 0.25 -mem-threshold 0.25
//
// Both inputs are benchjson documents. Benchmarks present in only one
// file are reported but never fail the gate (new benchmarks land before
// their baseline row does; retired ones disappear from fresh runs), and
// benchmarks whose baseline lacks a metric — or reports it as zero, as
// allocation-free code does — are skipped for that metric.
// Improvements are reported alongside regressions so the gate's output
// doubles as a quick perf diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's per-line record.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_solver.json", "committed benchjson baseline")
	freshPath := flag.String("fresh", "", "benchjson document of the fresh run to gate")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op regression (0.25 = fail beyond +25%)")
	memThreshold := flag.Float64("mem-threshold", 0.25, "allowed fractional B/op regression (0.25 = fail beyond +25%)")
	flag.Parse()

	if *freshPath == "" {
		return fmt.Errorf("-fresh is required (a benchjson document of the run to gate)")
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold %v must be >= 0", *threshold)
	}
	if *memThreshold < 0 {
		return fmt.Errorf("-mem-threshold %v must be >= 0", *memThreshold)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	var failed, compared int
	for _, gate := range []struct {
		metric    string
		threshold float64
	}{
		{"ns/op", *threshold},
		{"B/op", *memThreshold},
	} {
		base := indexMetric(baseline, gate.metric)
		cur := indexMetric(fresh, gate.metric)
		names := make([]string, 0, len(base))
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)

		for _, name := range names {
			b := base[name]
			f, ok := cur[name]
			if !ok {
				fmt.Printf("  ~ %-48s not in fresh run (skipped)\n", name)
				continue
			}
			compared++
			ratio := f / b
			switch {
			case ratio > 1+gate.threshold:
				failed++
				fmt.Printf("FAIL %-48s %12.0f -> %12.0f %s (%+.1f%% > +%.0f%% allowed)\n",
					name, b, f, gate.metric, 100*(ratio-1), 100*gate.threshold)
			default:
				fmt.Printf("  ok %-48s %12.0f -> %12.0f %s (%+.1f%%)\n",
					name, b, f, gate.metric, 100*(ratio-1))
			}
		}
		if gate.metric == "ns/op" {
			for name := range cur {
				if _, ok := base[name]; !ok {
					fmt.Printf("  + %-48s new benchmark (no baseline; skipped)\n", name)
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed beyond the allowed factor (+%.0f%% ns/op, +%.0f%% B/op)",
			failed, 100**threshold, 100**memThreshold)
	}
	fmt.Printf("benchgate: %d benchmark metric(s) within +%.0f%% ns/op / +%.0f%% B/op of baseline\n",
		compared, 100**threshold, 100**memThreshold)
	return nil
}

// load reads and decodes one benchjson document.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

// indexMetric maps benchmark name to one metric's value, skipping rows
// without it and rows reporting zero (benchjson archives
// custom-metric-only rows too, and a zero baseline — e.g. B/op of
// allocation-free code — admits no meaningful regression ratio).
func indexMetric(rep *Report, metric string) map[string]float64 {
	idx := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if v, ok := b.Metrics[metric]; ok && v > 0 {
			idx[b.Name] = v
		}
	}
	return idx
}
