// Command benchgate compares a fresh benchmark run against the committed
// baseline (BENCH_solver.json) and fails when any shared benchmark's
// ns/op regressed beyond the allowed factor — the repository's
// performance-regression gate (`make benchgate`).
//
//	benchgate -baseline BENCH_solver.json -fresh fresh.json
//	benchgate -baseline BENCH_solver.json -fresh fresh.json -threshold 0.25
//
// Both inputs are benchjson documents. Benchmarks present in only one
// file are reported but never fail the gate (new benchmarks land before
// their baseline row does; retired ones disappear from fresh runs).
// Improvements are reported alongside regressions so the gate's output
// doubles as a quick perf diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's per-line record.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_solver.json", "committed benchjson baseline")
	freshPath := flag.String("fresh", "", "benchjson document of the fresh run to gate")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op regression (0.25 = fail beyond +25%)")
	flag.Parse()

	if *freshPath == "" {
		return fmt.Errorf("-fresh is required (a benchjson document of the run to gate)")
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold %v must be >= 0", *threshold)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	base := indexNsOp(baseline)
	cur := indexNsOp(fresh)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var failed int
	for _, name := range names {
		b := base[name]
		f, ok := cur[name]
		if !ok {
			fmt.Printf("  ~ %-48s not in fresh run (skipped)\n", name)
			continue
		}
		ratio := f / b
		switch {
		case ratio > 1+*threshold:
			failed++
			fmt.Printf("FAIL %-48s %12.0f -> %12.0f ns/op (%+.1f%% > +%.0f%% allowed)\n",
				name, b, f, 100*(ratio-1), 100**threshold)
		default:
			fmt.Printf("  ok %-48s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				name, b, f, 100*(ratio-1))
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("  + %-48s new benchmark (no baseline; skipped)\n", name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%% ns/op", failed, 100**threshold)
	}
	fmt.Printf("benchgate: %d benchmark(s) within +%.0f%% of baseline\n", len(names), 100**threshold)
	return nil
}

// load reads and decodes one benchjson document.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

// indexNsOp maps benchmark name to its ns/op metric, skipping rows
// without one (benchjson archives custom-metric-only rows too).
func indexNsOp(rep *Report) map[string]float64 {
	idx := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			idx[b.Name] = ns
		}
	}
	return idx
}
