// Command capplan runs the paper's end-to-end capacity-planning pipeline:
// from per-tier monitoring CSV files (lines of "utilization,completions"
// per sampling period) it characterizes each tier (mean, I, p95), fits
// MAP(2) service processes, and predicts throughput and response time
// over a range of emulated-browser counts with both the burstiness-aware
// MAP model and the MVA baseline.
//
// It is a thin scenario builder: the flags assemble a declarative
// burst.Scenario (one sampled TierSpec per CSV, a population sweep, the
// map+mva solvers) and burst.Run executes it — the same pipeline a
// committed scenario file runs through cmd/burstlab.
//
// Two-tier usage (the paper's front + DB setup):
//
//	capplan -front front.csv -db db.csv -period 5 -z 0.5 -ebs 25,50,75,100,150
//
// N-tier usage (one CSV per tier, in visit order):
//
//	capplan -tiers front.csv,app.csv,db.csv -names front,app,db -period 5 -z 0.5 -ebs 25,50,100
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	burst "repro"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capplan:", err)
		os.Exit(1)
	}
}

func run() error {
	frontPath := flag.String("front", "", "front-tier monitoring CSV (utilization,completions)")
	dbPath := flag.String("db", "", "database-tier monitoring CSV")
	tiersList := flag.String("tiers", "", "comma-separated per-tier monitoring CSVs in visit order (N-tier mode; overrides -front/-db)")
	namesList := flag.String("names", "", "comma-separated tier names for -tiers (default front,app...,db)")
	period := flag.Float64("period", 5, "sampling period of the CSVs in seconds")
	z := flag.Float64("z", 0.5, "think time Z_qn for the what-if model")
	ebsList := flag.String("ebs", "25,50,75,100,150", "comma-separated EB counts to evaluate")
	withBounds := flag.Bool("bounds", false, "also bracket throughput with product-form bounds")
	withDecomp := flag.Bool("decomp", false, "also run the near-decomposable approximation (per-station fixed point) and report its error against the exact solve")
	classes := flag.String("classes", "", `workload classes for a multiclass what-if ("gold=3,bronze=1" for mix weights, "gold:20,bronze:5" for fixed per-class populations)`)
	flag.Parse()

	var paths []string
	switch {
	case *tiersList != "":
		paths = core.ParseNameList(*tiersList)
		if len(paths) == 0 {
			return fmt.Errorf("-tiers lists no files")
		}
	case *frontPath != "" && *dbPath != "":
		paths = []string{*frontPath, *dbPath}
	default:
		return fmt.Errorf("either -tiers or both -front and -db CSV files are required")
	}

	solvers := []burst.SolverKind{burst.SolverMAP, burst.SolverMVA}
	if *withDecomp {
		solvers = append(solvers, burst.SolverDecomp)
	}
	if *withBounds {
		solvers = append(solvers, burst.SolverBounds)
	}
	b := burst.NewScenarioBuilder().
		Name("capplan").
		ThinkTime(*z).
		PopulationList(*ebsList).
		TierNames(*namesList).
		Solvers(solvers...)
	if *classes != "" {
		b.ClassList(*classes)
	}
	for i, p := range paths {
		s, err := readCSV(p, *period)
		if err != nil {
			return fmt.Errorf("tier %d (%s): %w", i, p, err)
		}
		b.SampleTier("", s)
	}
	sc, err := b.Build()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := burst.Run(ctx, sc)
	if err != nil {
		return err
	}

	for _, tier := range rep.Tiers {
		c := tier.Characterization
		fmt.Printf("%-8s S=%.6gs I=%.4g p95=%.6gs (fit: SCV=%.3g gamma=%.3g)\n",
			tier.Name+":", c.MeanServiceTime, c.IndexOfDispersion, c.P95ServiceTime,
			tier.FitSCV, tier.FitGamma)
	}

	if rep.Degraded {
		fmt.Printf("DEGRADED: %s\n", rep.FallbackReason)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "EBs\tMAP TPUT\tMAP R(s)"
	for _, tier := range rep.Tiers {
		header += "\tMAP U_" + tier.Name
	}
	if *withDecomp {
		header += "\tDEC TPUT\tDEC R(s)\tDEC err"
	}
	header += "\tMVA TPUT\tMVA R(s)"
	if *withBounds {
		header += "\tX lower\tX upper"
	}
	fmt.Fprintln(w, header)
	for _, r := range rep.Results {
		row := fmt.Sprintf("%d", r.Population)
		if r.MAP != nil {
			row += fmt.Sprintf("\t%.1f\t%.4f", r.MAP.Throughput, r.MAP.ResponseTime)
			for _, u := range r.MAP.Utils {
				row += fmt.Sprintf("\t%.2f", u)
			}
		} else {
			// Degraded run: the exact columns stay blank.
			row += strings.Repeat("\t", 2+len(rep.Tiers))
		}
		if *withDecomp {
			if r.Decomp != nil {
				row += fmt.Sprintf("\t%.1f\t%.4f", r.Decomp.Throughput, r.Decomp.ResponseTime)
				if r.MAP != nil {
					row += fmt.Sprintf("\t%.2f%%", 100*r.DecompError)
				} else {
					row += "\t"
				}
			} else {
				row += "\t\t\t"
			}
		}
		row += fmt.Sprintf("\t%.1f\t%.4f", r.MVA.Throughput, r.MVA.ResponseTime)
		if r.Bounds != nil {
			row += fmt.Sprintf("\t%.1f\t%.1f", r.Bounds.LowerX, r.Bounds.UpperX)
		}
		fmt.Fprintln(w, row)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Per-class what-if columns, when classes were declared.
	if len(rep.ClassNames) > 0 {
		fmt.Printf("classes: %v\n", rep.ClassNames)
		if rep.ClassAggregation != "" {
			fmt.Printf("note: %s\n", rep.ClassAggregation)
		}
		cw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(cw, "EBs\tclass\tEBs_c\tMVA TPUT\tMVA R(s)")
		for _, r := range rep.Results {
			if r.Multiclass == nil {
				continue
			}
			for _, cr := range r.Multiclass.Classes {
				fmt.Fprintf(cw, "%d\t%s\t%d\t%.1f\t%.4f\n",
					r.Population, cr.Name, cr.Population, cr.Throughput, cr.ResponseTime)
			}
		}
		if err := cw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func readCSV(path string, period float64) (trace.UtilizationSamples, error) {
	u := trace.UtilizationSamples{PeriodSeconds: period}
	f, err := os.Open(path)
	if err != nil {
		return u, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return u, fmt.Errorf("%s:%d: want utilization,completions", path, lineNo)
		}
		util, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return u, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		compl, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return u, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		u.Utilization = append(u.Utilization, util)
		u.Completions = append(u.Completions, compl)
	}
	return u, sc.Err()
}
