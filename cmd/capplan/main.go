// Command capplan runs the paper's end-to-end capacity-planning pipeline:
// from two monitoring CSV files (front and database tier, lines of
// "utilization,completions" per sampling period) it characterizes each
// tier (mean, I, p95), fits MAP(2) service processes, and predicts
// throughput and response time over a range of emulated-browser counts
// with both the burstiness-aware MAP model and the MVA baseline.
//
// Usage:
//
//	capplan -front front.csv -db db.csv -period 5 -z 0.5 -ebs 25,50,75,100,150
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capplan:", err)
		os.Exit(1)
	}
}

func run() error {
	frontPath := flag.String("front", "", "front-tier monitoring CSV (utilization,completions)")
	dbPath := flag.String("db", "", "database-tier monitoring CSV")
	period := flag.Float64("period", 5, "sampling period of the CSVs in seconds")
	z := flag.Float64("z", 0.5, "think time Z_qn for the what-if model")
	ebsList := flag.String("ebs", "25,50,75,100,150", "comma-separated EB counts to evaluate")
	flag.Parse()
	if *frontPath == "" || *dbPath == "" {
		return fmt.Errorf("both -front and -db CSV files are required")
	}

	front, err := readCSV(*frontPath, *period)
	if err != nil {
		return fmt.Errorf("front: %w", err)
	}
	db, err := readCSV(*dbPath, *period)
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	populations, err := parseEBs(*ebsList)
	if err != nil {
		return err
	}

	plan, err := core.BuildPlan(front, db, *z, core.PlannerOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("front: S=%.6gs I=%.4g p95=%.6gs (fit: SCV=%.3g gamma=%.3g)\n",
		plan.Front.MeanServiceTime, plan.Front.IndexOfDispersion, plan.Front.P95ServiceTime,
		plan.FrontFit.SCV, plan.FrontFit.Gamma)
	fmt.Printf("db:    S=%.6gs I=%.4g p95=%.6gs (fit: SCV=%.3g gamma=%.3g)\n",
		plan.DB.MeanServiceTime, plan.DB.IndexOfDispersion, plan.DB.P95ServiceTime,
		plan.DBFit.SCV, plan.DBFit.Gamma)

	preds, err := plan.Predict(populations)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "EBs\tMAP TPUT\tMAP R(s)\tMAP U_f\tMAP U_db\tMVA TPUT\tMVA R(s)")
	for _, p := range preds {
		fmt.Fprintf(w, "%d\t%.1f\t%.4f\t%.2f\t%.2f\t%.1f\t%.4f\n",
			p.EBs, p.MAP.Throughput, p.MAP.ResponseTime, p.MAP.UtilFront, p.MAP.UtilDB,
			p.MVA.Throughput, p.MVA.ResponseTime)
	}
	return w.Flush()
}

func readCSV(path string, period float64) (trace.UtilizationSamples, error) {
	u := trace.UtilizationSamples{PeriodSeconds: period}
	f, err := os.Open(path)
	if err != nil {
		return u, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return u, fmt.Errorf("%s:%d: want utilization,completions", path, lineNo)
		}
		util, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return u, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		compl, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return u, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		u.Utilization = append(u.Utilization, util)
		u.Completions = append(u.Completions, compl)
	}
	return u, sc.Err()
}

func parseEBs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad EB count %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
