// Command dispersion estimates the index of dispersion of a service
// process, either from a raw trace of service times (one per line) or
// from coarse monitoring data (CSV lines "utilization,completions" per
// sampling period) using the paper's Figure 2 algorithm.
//
// Usage:
//
//	dispersion -mode trace  < service_times.txt
//	dispersion -mode monitor -period 5 < monitor.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/inference"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dispersion:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	mode := flag.String("mode", "trace", "input format: trace (one service time per line) or monitor (CSV utilization,completions)")
	period := flag.Float64("period", 5, "sampling period in seconds (monitor mode)")
	tol := flag.Float64("tol", 0.20, "convergence tolerance of the Figure 2 algorithm")
	flag.Parse()

	switch *mode {
	case "trace":
		tr, err := readTrace(in)
		if err != nil {
			return err
		}
		i, err := tr.IndexOfDispersion(trace.DispersionOptions{Tol: *tol})
		if err != nil {
			return err
		}
		p95, err := tr.Percentile(95)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "samples=%d mean=%.6g scv=%.4g I=%.4g p95=%.6g\n",
			len(tr), tr.Mean(), tr.SCV(), i, p95)
		return nil
	case "monitor":
		samples, err := readMonitor(in, *period)
		if err != nil {
			return err
		}
		c, err := inference.Characterize(samples, inference.Options{
			Dispersion: trace.DispersionOptions{Tol: *tol},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "periods=%d meanU=%.3f S=%.6g I=%.4g p95=%.6g converged=%v window=%.0fs\n",
			c.Samples, c.MeanUtilization, c.MeanServiceTime, c.IndexOfDispersion,
			c.P95ServiceTime, c.Converged, c.WindowSeconds)
		return nil
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func readTrace(in io.Reader) (trace.T, error) {
	var tr trace.T
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q: %w", line, err)
		}
		tr = append(tr, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func readMonitor(in io.Reader, period float64) (trace.UtilizationSamples, error) {
	u := trace.UtilizationSamples{PeriodSeconds: period}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return u, fmt.Errorf("line %d: want utilization,completions", lineNo)
		}
		util, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return u, fmt.Errorf("line %d: bad utilization: %w", lineNo, err)
		}
		compl, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return u, fmt.Errorf("line %d: bad completions: %w", lineNo, err)
		}
		u.Utilization = append(u.Utilization, util)
		u.Completions = append(u.Completions, compl)
	}
	if err := sc.Err(); err != nil {
		return u, err
	}
	return u, nil
}
