// Command burstgen generates service-time traces with controlled
// burstiness (the construction of Fig. 1) and prints them one sample per
// line, optionally with summary statistics on stderr.
//
// Usage:
//
//	burstgen [-n 20000] [-mean 1] [-scv 3] [-profile random|mild|strong|single] [-seed 1] [-stats]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burstgen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 20000, "number of samples")
	mean := flag.Float64("mean", 1.0, "mean service time")
	scv := flag.Float64("scv", 3.0, "squared coefficient of variation (>= 1)")
	profileName := flag.String("profile", "random", "burstiness profile: random, mild, strong, single")
	seed := flag.Int64("seed", 1, "random seed")
	showStats := flag.Bool("stats", false, "print mean/SCV/I summary to stderr")
	flag.Parse()

	var profile trace.Profile
	switch *profileName {
	case "random":
		profile = trace.ProfileRandom
	case "mild":
		profile = trace.ProfileMildBursts
	case "strong":
		profile = trace.ProfileStrongBursts
	case "single":
		profile = trace.ProfileSingleBurst
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	tr, err := trace.GenerateH2Trace(*n, *mean, *scv, profile, xrand.New(*seed))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	for _, s := range tr {
		if _, err := w.WriteString(strconv.FormatFloat(s, 'g', -1, 64) + "\n"); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *showStats {
		i, err := tr.IndexOfDispersion(trace.DispersionOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "n=%d mean=%.4f scv=%.3f I=%.1f\n", len(tr), tr.Mean(), tr.SCV(), i)
	}
	return nil
}
