// Command mapfit fits a MAP(2) service process from the paper's three
// measurements — mean service time, index of dispersion, 95th percentile
// — and prints the fitted (D0, D1) matrices plus the achieved
// descriptors. With -route counts it instead fits an MMPP(2) from
// counting statistics (rate, I, burst time scale).
//
// Usage:
//
//	mapfit -mean 0.0046 -i 280 -p95 0.019
//	mapfit -route counts -rate 100 -i 50 -burstscale 2.5
//	mapfit -mean 0.0046 -i 280 -p95 0.019 -policy maxlag1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/markov"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mapfit:", err)
		os.Exit(1)
	}
}

func run() error {
	route := flag.String("route", "threepoint", "fitting route: threepoint (mean, I, p95) or counts (rate, I, burst scale)")
	mean := flag.Float64("mean", 0, "mean service time in seconds (threepoint)")
	p95 := flag.Float64("p95", 0, "95th percentile of service times (threepoint; 0 = unmeasured)")
	i := flag.Float64("i", 0, "index of dispersion")
	rate := flag.Float64("rate", 0, "fundamental completion rate (counts)")
	burstScale := flag.Float64("burstscale", 0, "burst epoch time scale in seconds (counts)")
	policy := flag.String("policy", "p95", "selection policy: p95 (closest 95th percentile) or maxlag1 (conservative)")
	flag.Parse()

	var m *markov.MAP
	switch *route {
	case "threepoint":
		opts := markov.FitOptions{}
		switch *policy {
		case "p95":
		case "maxlag1":
			opts.Policy = markov.SelectMaxLag1
		default:
			return fmt.Errorf("unknown policy %q", *policy)
		}
		res, err := markov.FitThreePoint(*mean, *i, *p95, opts)
		if err != nil {
			return err
		}
		m = res.MAP
		fmt.Printf("fit: SCV=%.4g gamma=%.4g achievedI=%.4g achievedP95=%.6g relErrP95=%.3g\n",
			res.SCV, res.Gamma, res.AchievedI, res.AchievedP95, res.RelErrP95)
	case "counts":
		var err error
		m, err = markov.FitMMPP2Counts(*rate, *i, *burstScale)
		if err != nil {
			return err
		}
		cd, err := m.Counting()
		if err != nil {
			return err
		}
		fmt.Printf("fit: rate=%.6g I=%.4g\n", cd.Rate, cd.I)
	default:
		return fmt.Errorf("unknown route %q", *route)
	}

	fmt.Println("D0 =")
	fmt.Print(m.D0.String())
	fmt.Println("D1 =")
	fmt.Print(m.D1.String())
	fmt.Printf("mean=%.6g SCV=%.4g rho1=%.4g", m.Mean(), m.SCV(), safeLag1(m))
	if iAch, err := m.IndexOfDispersion(); err == nil {
		fmt.Printf(" I=%.4g", iAch)
	}
	fmt.Println()
	return nil
}

func safeLag1(m *markov.MAP) float64 {
	defer func() { _ = recover() }()
	return m.AutocorrelationLag(1)
}
