package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	burst "repro"
	"repro/internal/service"
)

// remoteOptions carries burstlab's -remote submission inputs: either a
// suite file (with the usual suite flag overrides) or a scenario file
// wrapped as a single-cell suite.
type remoteOptions struct {
	scenarioPath string
	suite        suiteOptions
}

// runRemote submits the experiment to a running burstlabd, follows the
// job's row stream to completion, and mirrors local burstlab behavior:
// rows go to -out, the summary table prints, and the exit code
// distinguishes partial failure (3) from hard failure (1). The daemon
// owns execution — its shared memo serves repeated submissions — so
// -resume is meaningless here (the daemon resumes its own spool).
func runRemote(ctx context.Context, addr string, rerun bool, o remoteOptions) error {
	suite, err := buildRemoteSuite(o)
	if err != nil {
		return err
	}
	body, err := suite.JSON()
	if err != nil {
		return err
	}

	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{} // no timeout: the row stream is long-lived

	submitURL := base + "/api/v1/jobs"
	if rerun {
		submitURL += "?rerun=1"
	}
	st, err := postJob(ctx, client, submitURL, body)
	if err != nil {
		return err
	}
	if !o.suite.quiet {
		fmt.Fprintf(os.Stderr, "burstlab: job %s %s (%d cells) on %s\n", st.ID, st.State, st.Cells, base)
	}

	start := time.Now()
	rows, err := followRows(ctx, client, base, st.ID, o.suite.outPath)
	if err != nil {
		return err
	}
	st, err = getStatus(ctx, client, base, st.ID)
	if err != nil {
		return err
	}
	if st.State == service.JobFailed {
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	if st.State != service.JobDone {
		return fmt.Errorf("job %s ended in state %q (daemon draining? resubmit after it restarts)", st.ID, st.State)
	}

	if !o.suite.quiet {
		printSuiteSummary(remoteReport(suite.Name, st, rows), time.Since(start))
		if m := st.Memo; m != nil {
			fmt.Printf("daemon cache: %d hits / %d misses this job (%d entries, %d bytes resident)\n",
				m.Hits(), m.Misses(), m.Entries, m.Bytes)
		}
	}
	if o.suite.outPath != "" && o.suite.outPath != "-" {
		fmt.Fprintf(os.Stderr, "burstlab: %d rows streamed to %s\n", len(rows), o.suite.outPath)
	}
	if st.Failed > 0 {
		return partialFailureError{failed: st.Failed, cells: st.Cells}
	}
	return nil
}

// buildRemoteSuite assembles the suite to submit: the -suite file with
// the usual flag overrides applied before hashing, or the -scenario
// file wrapped as a single-cell suite.
func buildRemoteSuite(o remoteOptions) (burst.Suite, error) {
	var suite burst.Suite
	if o.suite.path != "" {
		var err error
		if suite, err = burst.LoadSuite(o.suite.path); err != nil {
			return burst.Suite{}, err
		}
	} else {
		sc, err := burst.LoadScenario(o.scenarioPath)
		if err != nil {
			return burst.Suite{}, err
		}
		suite = burst.Suite{Name: sc.Name, Base: sc}
	}
	applyBackend(&suite.Base, o.suite.backend)
	if len(o.suite.classes) > 0 {
		suite.Base.Classes = o.suite.classes
	}
	if o.suite.workers != 0 {
		suite.Workers = o.suite.workers
	}
	if o.suite.onError != "" {
		suite.OnError = burst.FailurePolicy(o.suite.onError)
	}
	if o.suite.retries >= 0 {
		suite.Retry.MaxRetries = o.suite.retries
	}
	if o.suite.cellTimeout > 0 {
		suite.Base.Deadline = o.suite.cellTimeout.Seconds()
	}
	return suite, nil
}

func postJob(ctx context.Context, client *http.Client, url string, body []byte) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return service.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("submit to daemon: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return service.JobStatus{}, fmt.Errorf("submit: daemon said %s: %s", resp.Status, readErr(resp.Body))
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, fmt.Errorf("submit: parse response: %w", err)
	}
	return st, nil
}

func getStatus(ctx context.Context, client *http.Client, base, id string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("job status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, fmt.Errorf("job status: daemon said %s: %s", resp.Status, readErr(resp.Body))
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, fmt.Errorf("job status: parse response: %w", err)
	}
	return st, nil
}

// followRows streams the job's JSONL rows until the job reaches a rest
// state, copying each raw line to outPath ("-" or "" = stdout only when
// "-") and parsing it for the summary. The footer row (if present) is
// copied through like any other line.
func followRows(ctx context.Context, client *http.Client, base, id, outPath string) ([]burst.SuiteRow, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/jobs/"+id+"/rows?follow=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("follow rows: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("follow rows: daemon said %s: %s", resp.Status, readErr(resp.Body))
	}

	var out io.Writer
	switch outPath {
	case "":
	case "-":
		out = os.Stdout
	default:
		f, err := os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		out = f
	}

	var rows []burst.SuiteRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if out != nil {
			out.Write(line)         //nolint:errcheck
			out.Write([]byte{'\n'}) //nolint:errcheck
		}
		var row burst.SuiteRow
		if err := json.Unmarshal(line, &row); err != nil {
			continue
		}
		if row.Status != burst.CellStatusFooter {
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("follow rows: %w", err)
	}
	return rows, nil
}

// remoteReport reassembles a SuiteReport from the streamed rows and the
// job's final status so the local summary table renders unchanged.
func remoteReport(name string, st service.JobStatus, rows []burst.SuiteRow) *burst.SuiteReport {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	rep := &burst.SuiteReport{
		Name:    name,
		Cells:   st.Cells,
		Skipped: st.Skipped,
		Failed:  st.Failed,
		Rows:    rows,
	}
	if st.Memo != nil {
		rep.Memo = *st.Memo
	}
	return rep
}

func readErr(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}
