// Command burstlab executes a declarative scenario file end to end: it
// loads a Scenario (JSON), runs it through the library's single Run
// entry point — characterize, fit, solve, simulate, cross-validate as
// the scenario's solver selection demands — and prints the unified
// Report. It is the one CLI surface over the whole pipeline; capplan and
// tpcwsim are thin scenario builders over the same machinery.
//
// Usage:
//
//	burstlab -scenario scenario.json
//	burstlab -scenario scenario.json -out report.json -quiet
//	burstlab -scenario scenario.json -timeout 2m
//
// Interrupting the run (Ctrl-C / SIGTERM) cancels it cooperatively: the
// CTMC sweep or simulation in flight stops within one step and the
// command exits with an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	burst "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burstlab:", err)
		os.Exit(1)
	}
}

func run() error {
	scenarioPath := flag.String("scenario", "", "scenario JSON file to run (required)")
	outPath := flag.String("out", "", "write the full JSON report to this file ('-' for stdout)")
	quiet := flag.Bool("quiet", false, "suppress the human-readable summary and progress")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	flag.Parse()

	if *scenarioPath == "" {
		return fmt.Errorf("-scenario is required (see examples/scenariofile/scenario.json)")
	}
	sc, err := burst.LoadScenario(*scenarioPath)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*quiet {
		sc.OnProgress = func(ev burst.ProgressEvent) {
			if ev.Population != 0 {
				fmt.Fprintf(os.Stderr, "burstlab: %-12s N=%-5d %d/%d\n", ev.Stage, ev.Population, ev.Step, ev.Total)
			} else {
				fmt.Fprintf(os.Stderr, "burstlab: %-12s %d/%d\n", ev.Stage, ev.Step, ev.Total)
			}
		}
	}

	start := time.Now()
	rep, err := burst.Run(ctx, sc)
	if err != nil {
		return err
	}
	if !*quiet {
		printSummary(rep, time.Since(start))
	}
	if *outPath != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if *outPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "burstlab: report written to %s\n", *outPath)
	}
	return nil
}

// printSummary renders the report as one table per concern: tier model
// inputs, then a per-population row with whichever columns the
// scenario's solvers produced.
func printSummary(rep *burst.Report, elapsed time.Duration) {
	sc := rep.Scenario
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("%s: Z=%.2fs populations=%v solvers=%v (%.1fs)\n",
		name, sc.ThinkTime, sc.Populations, sc.Solvers, elapsed.Seconds())

	for _, tier := range rep.Tiers {
		c := tier.Characterization
		fmt.Printf("tier %-8s S=%.6gs I=%.4g p95=%.6gs", tier.Name, c.MeanServiceTime, c.IndexOfDispersion, c.P95ServiceTime)
		if tier.FitSCV != 0 {
			fmt.Printf("  (fit: SCV=%.3g gamma=%.3g)", tier.FitSCV, tier.FitGamma)
		}
		fmt.Println()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "N"
	first := rep.Results[0]
	if first.MAP != nil {
		header += "\tMAP X\tMAP R(s)"
	}
	if first.MVA != nil {
		header += "\tMVA X\tMVA R(s)"
	}
	if first.Bounds != nil {
		header += "\tX lower\tX upper"
	}
	if first.Sim != nil {
		header += "\tsim X\tsim R(s)"
	}
	if first.Validation != nil {
		header += "\tMAP err\tMVA err"
	}
	fmt.Fprintln(w, header)
	for _, r := range rep.Results {
		row := fmt.Sprintf("%d", r.Population)
		if r.MAP != nil {
			row += fmt.Sprintf("\t%.2f\t%.4f", r.MAP.Throughput, r.MAP.ResponseTime)
		}
		if r.MVA != nil {
			row += fmt.Sprintf("\t%.2f\t%.4f", r.MVA.Throughput, r.MVA.ResponseTime)
		}
		if r.Bounds != nil {
			row += fmt.Sprintf("\t%.2f\t%.2f", r.Bounds.LowerX, r.Bounds.UpperX)
		}
		if r.Sim != nil {
			row += fmt.Sprintf("\t%.2f±%.2f\t%.4f", r.Sim.Throughput.Mean, r.Sim.Throughput.HalfWidth, r.Sim.MeanResponse.Mean)
		}
		if r.Validation != nil {
			row += fmt.Sprintf("\t%+.1f%%\t%+.1f%%", 100*r.Validation.MAPError, 100*r.Validation.MVAError)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()

	// Per-tier validation detail, when the loop was closed.
	for _, r := range rep.Results {
		if r.Validation == nil {
			continue
		}
		fmt.Printf("validation at N=%d (CTMC states %d, MAP within sim CI: %v):\n",
			r.Population, r.Validation.States, r.Validation.MAPWithinCI)
		for _, tier := range r.Validation.Tiers {
			fmt.Printf("  tier %-8s U sim=%.3f±%.3f  MAP=%.3f (%+.3f)  MVA=%.3f (%+.3f)  I=%.1f\n",
				tier.Name, tier.SimUtil.Mean, tier.SimUtil.HalfWidth,
				tier.MAPUtil, tier.MAPError, tier.MVAUtil, tier.MVAError, tier.IndexOfDispersion)
		}
	}
}
