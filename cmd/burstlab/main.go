// Command burstlab executes declarative experiment files end to end.
// With -scenario it loads one Scenario (JSON), runs it through the
// library's single Run entry point — characterize, fit, solve,
// simulate, cross-validate as the scenario's solver selection demands —
// and prints the unified Report. With -suite it loads a Suite (a base
// scenario crossed with a parameter grid), expands it into
// content-addressed cells and runs them over a worker pool with stage
// memoization, streaming each finished cell to a JSONL report file. It
// is the one CLI surface over the whole pipeline; capplan and tpcwsim
// are thin scenario builders over the same machinery.
//
// Usage:
//
//	burstlab -scenario scenario.json
//	burstlab -scenario scenario.json -out report.json -quiet
//	burstlab -scenario scenario.json -timeout 2m
//	burstlab -suite suite.json -out report.jsonl
//	burstlab -suite suite.json -out report.jsonl -resume -workers 4
//	burstlab -suite suite.json -out report.jsonl -on-error continue -retries 2
//	burstlab -suite suite.json -out report.jsonl -cell-timeout 90s
//
// Suite runs are resumable: with -resume, cells whose content hash
// already has a completed row in the -out JSONL file are skipped, so an
// interrupted sweep picks up where it stopped. Cells whose latest row
// failed (a previous -on-error continue run) are re-run, and truncated
// or corrupt trailing lines are skipped with a warning.
//
// Failure handling: -on-error continue records failed cells (stage,
// class, message) in the JSONL rows instead of aborting the sweep;
// -retries bounds retries of transient cell errors; -cell-timeout
// bounds each cell's wall clock (a deadline expiring during the exact
// MAP solve degrades that cell to the decomp approximation — or
// NetworkBounds when that also fails — rather than failing it). Exit
// codes: 0 success, 1 hard failure (invalid input, fail-fast
// cell error, cancellation, I/O), 3 partial failure — a continue-policy
// run completed but recorded failed cells, whose rows are on disk and
// retryable with -resume.
//
// With -remote host:port the experiment is not executed locally:
// burstlab submits it to a running burstlabd (see cmd/burstlabd),
// follows the job's row stream, writes the rows to -out and exits with
// the same code semantics. -rerun forces a finished job to re-execute
// against the daemon's warm cache:
//
//	burstlab -remote 127.0.0.1:8344 -suite suite.json -out report.jsonl
//	burstlab -remote 127.0.0.1:8344 -suite suite.json -rerun -quiet
//
// Interrupting the run (Ctrl-C / SIGTERM) cancels it cooperatively: the
// CTMC sweep or simulation in flight stops within one step and the
// command exits with an error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	burst "repro"
)

// Exit codes: 0 on success, 1 on any error that stopped the run
// (invalid input, fail-fast cell failure, cancellation, I/O), and 3
// when the run completed under -on-error continue but recorded failed
// cells — every healthy cell's row is on disk, so scripts can distinguish
// "partial results, retry with -resume" from a hard failure.
const exitPartialFailure = 3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burstlab:", err)
		var pf partialFailureError
		if errors.As(err, &pf) {
			os.Exit(exitPartialFailure)
		}
		os.Exit(1)
	}
}

// partialFailureError reports a completed continue-policy run with
// failed cells; main maps it to exit code 3.
type partialFailureError struct {
	failed, cells int
}

func (e partialFailureError) Error() string {
	return fmt.Sprintf("%d of %d cells failed (rows recorded; re-run with -resume to retry them)", e.failed, e.cells)
}

func run() error {
	scenarioPath := flag.String("scenario", "", "scenario JSON file to run")
	suitePath := flag.String("suite", "", "suite JSON file to run (base scenario + parameter grid)")
	outPath := flag.String("out", "", "write the report here: full JSON for -scenario ('-' for stdout), streamed JSONL rows for -suite")
	resume := flag.Bool("resume", false, "with -suite: skip cells whose hash already has a completed row in -out")
	workers := flag.Int("workers", 0, "with -suite: cap concurrently running cells (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress the human-readable summary and progress")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	backend := flag.String("backend", "", "CTMC generator backend: csr or matrix-free (empty = auto-select by state count); overrides the scenario's solver options")
	onError := flag.String("on-error", "", "with -suite: failure policy, fail-fast or continue (empty = the suite file's setting)")
	retries := flag.Int("retries", -1, "with -suite: max retries of transient cell errors (-1 = the suite file's setting)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell (or per-scenario) deadline; expiry during the exact MAP solve degrades to the decomp approximation, then NetworkBounds (0 = no limit)")
	classes := flag.String("classes", "", `override the workload classes of the scenario (or suite base): "browsing=3,ordering=1" for mix weights, "browsing:20,ordering:5" for fixed per-class populations`)
	remote := flag.String("remote", "", "submit to a running burstlabd at this address (host:port or URL) instead of executing locally, follow the job and stream its rows")
	rerun := flag.Bool("rerun", false, "with -remote: re-execute the job even if the daemon already holds its result (served from the daemon's warm memo)")
	flag.Parse()

	var classSpecs []burst.ClassSpec
	if *classes != "" {
		var err error
		if classSpecs, err = burst.ParseClassList(*classes); err != nil {
			return err
		}
	}

	switch burst.SolverBackend(*backend) {
	case burst.BackendAuto, burst.BackendCSR, burst.BackendMatrixFree:
	default:
		return fmt.Errorf("unknown -backend %q (want csr or matrix-free)", *backend)
	}
	if !burst.FailurePolicy(*onError).Valid() {
		return fmt.Errorf("unknown -on-error %q (want fail-fast or continue)", *onError)
	}

	if (*scenarioPath == "") == (*suitePath == "") {
		return fmt.Errorf("exactly one of -scenario or -suite is required (see examples/scenariofile, examples/suite)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" {
		return runRemote(ctx, *remote, *rerun, remoteOptions{
			scenarioPath: *scenarioPath,
			suite: suiteOptions{
				path: *suitePath, outPath: *outPath, backend: *backend,
				workers: *workers, quiet: *quiet,
				onError: *onError, retries: *retries, cellTimeout: *cellTimeout,
				classes: classSpecs,
			},
		})
	}

	if *suitePath != "" {
		return runSuite(ctx, suiteOptions{
			path: *suitePath, outPath: *outPath, backend: *backend,
			resume: *resume, workers: *workers, quiet: *quiet,
			onError: *onError, retries: *retries, cellTimeout: *cellTimeout,
			classes: classSpecs,
		})
	}

	sc, err := burst.LoadScenario(*scenarioPath)
	if err != nil {
		return err
	}
	applyBackend(&sc, *backend)
	if len(classSpecs) > 0 {
		sc.Classes = classSpecs
	}
	if *cellTimeout > 0 {
		sc.Deadline = cellTimeout.Seconds()
	}

	if !*quiet {
		sc.OnProgress = func(ev burst.ProgressEvent) {
			if ev.Population != 0 {
				fmt.Fprintf(os.Stderr, "burstlab: %-12s N=%-5d %d/%d\n", ev.Stage, ev.Population, ev.Step, ev.Total)
			} else {
				fmt.Fprintf(os.Stderr, "burstlab: %-12s %d/%d\n", ev.Stage, ev.Step, ev.Total)
			}
		}
	}

	start := time.Now()
	rep, err := burst.Run(ctx, sc)
	if err != nil {
		return err
	}
	if !*quiet {
		printSummary(rep, time.Since(start))
	}
	if *outPath != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if *outPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "burstlab: report written to %s\n", *outPath)
	}
	return nil
}

// applyBackend forces the CTMC generator backend on a scenario's solver
// options; an empty selection leaves the scenario untouched.
func applyBackend(sc *burst.Scenario, backend string) {
	if backend == "" {
		return
	}
	if sc.Planner == nil {
		sc.Planner = &burst.PlannerOptions{}
	}
	sc.Planner.Solver.Backend = burst.SolverBackend(backend)
}

// suiteOptions carries burstlab's suite-mode flags.
type suiteOptions struct {
	path, outPath, backend string
	resume, quiet          bool
	workers, retries       int
	onError                string
	cellTimeout            time.Duration
	classes                []burst.ClassSpec
}

// runSuite executes a suite file: expand the grid, skip cells already
// completed in a resumed output, stream finished cells to the JSONL
// sink, and print an aggregated per-cell table. It returns an error —
// after every healthy cell has run and been recorded — when any cell
// failed under the continue policy, so the exit code reflects failures.
func runSuite(ctx context.Context, o suiteOptions) error {
	suite, err := burst.LoadSuite(o.path)
	if err != nil {
		return err
	}
	applyBackend(&suite.Base, o.backend)
	if len(o.classes) > 0 {
		suite.Base.Classes = o.classes
	}
	if o.workers != 0 {
		suite.Workers = o.workers
	}
	if o.onError != "" {
		suite.OnError = burst.FailurePolicy(o.onError)
	}
	if o.retries >= 0 {
		suite.Retry.MaxRetries = o.retries
	}
	if o.cellTimeout > 0 {
		suite.Base.Deadline = o.cellTimeout.Seconds()
	}
	if o.resume {
		if o.outPath == "" {
			return fmt.Errorf("-resume needs -out (the JSONL file holding completed rows)")
		}
		st, err := burst.ReadJSONLResume(o.outPath)
		if err != nil {
			return err
		}
		if st.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "burstlab: warning: %d unparseable line(s) in %s skipped (truncated or corrupt); their cells will re-run\n",
				st.Malformed, o.outPath)
		}
		if len(st.Failed) > 0 {
			fmt.Fprintf(os.Stderr, "burstlab: %d previously failed cell(s) will re-run\n", len(st.Failed))
		}
		suite.Skip = st.Done
	}
	if !o.quiet {
		suite.OnProgress = func(ev burst.SuiteEvent) {
			fmt.Fprintf(os.Stderr, "burstlab: %-5s [%d/%d] %s\n", ev.Stage, ev.Done, ev.Total, ev.Cell.Name)
		}
	}
	var sinks []burst.ReportSink
	switch {
	case o.outPath == "-":
		if o.resume {
			return fmt.Errorf("-resume needs a file -out, not stdout")
		}
		sinks = append(sinks, burst.NewJSONLSink(os.Stdout))
	case o.outPath != "":
		// A fresh run truncates; -resume appends after the surviving rows.
		open := burst.OpenJSONLSink
		if o.resume {
			open = burst.AppendJSONLSink
		}
		sink, err := open(o.outPath)
		if err != nil {
			return err
		}
		sinks = append(sinks, sink)
	}

	start := time.Now()
	rep, err := burst.RunSuite(ctx, suite, sinks...)
	if err != nil {
		return err
	}
	if !o.quiet {
		printSuiteSummary(rep, time.Since(start))
	}
	if o.outPath != "" {
		fmt.Fprintf(os.Stderr, "burstlab: %d rows streamed to %s (%d skipped)\n",
			rep.Cells-rep.Skipped, o.outPath, rep.Skipped)
	}
	if rep.Failed > 0 {
		return partialFailureError{failed: rep.Failed, cells: rep.Cells}
	}
	return nil
}

// printSuiteSummary renders one line per (cell, population) with the
// headline columns each cell's solvers produced, then the memo-cache
// counters — the visible effect of cross-cell stage reuse.
func printSuiteSummary(rep *burst.SuiteReport, elapsed time.Duration) {
	name := rep.Name
	if name == "" {
		name = "suite"
	}
	extra := ""
	if rep.Failed > 0 {
		extra = fmt.Sprintf(", %d failed", rep.Failed)
	}
	fmt.Printf("%s: %d cells (%d skipped%s) in %.1fs\n", name, rep.Cells, rep.Skipped, extra, elapsed.Seconds())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cell\tN\tMAP X\tdecomp X\tMVA X\tbounds\tsim X\tMAP err")
	degraded := 0
	for _, row := range rep.Rows {
		if row.Skipped {
			fmt.Fprintf(w, "%s\t(skipped)\t\t\t\t\t\t\n", cellLabel(row))
			continue
		}
		if row.Error != nil || row.Report == nil {
			detail := "error"
			if row.Error != nil {
				detail = fmt.Sprintf("%s stage, %s: %s", row.Error.Stage, row.Error.Class, row.Error.Message)
			}
			fmt.Fprintf(w, "%s\t(FAILED: %s)\t\t\t\t\t\t\n", cellLabel(row), detail)
			continue
		}
		label := cellLabel(row)
		if row.Report.Degraded {
			label += " *"
			degraded++
		}
		for _, r := range row.Report.Results {
			cols := fmt.Sprintf("%s\t%d", label, r.Population)
			cols += colF(r.MAP != nil, func() float64 { return r.MAP.Throughput })
			cols += colF(r.Decomp != nil, func() float64 { return r.Decomp.Throughput })
			cols += colF(r.MVA != nil, func() float64 { return r.MVA.Throughput })
			if r.Bounds != nil {
				cols += fmt.Sprintf("\t%.2f-%.2f", r.Bounds.LowerX, r.Bounds.UpperX)
			} else {
				cols += "\t"
			}
			cols += colF(r.Sim != nil, func() float64 { return r.Sim.Throughput.Mean })
			if r.Validation != nil {
				cols += fmt.Sprintf("\t%+.1f%%", 100*r.Validation.MAPError)
			} else {
				cols += "\t"
			}
			fmt.Fprintln(w, cols)
		}
	}
	w.Flush()
	if degraded > 0 {
		fmt.Printf("* %d cell(s) degraded: exact MAP solve replaced by the decomp approximation or NetworkBounds (see fallback_reason in the rows)\n", degraded)
	}
	backend, peak := "", 0
	for _, row := range rep.Rows {
		if row.Skipped || row.Report == nil {
			continue
		}
		if row.Report.SolverBackend != "" {
			backend = row.Report.SolverBackend
		}
		if row.Report.PeakStates > peak {
			peak = row.Report.PeakStates
		}
	}
	if backend != "" {
		fmt.Printf("solver: backend=%s peak CTMC states=%d\n", backend, peak)
	}
	m := rep.Memo
	fmt.Printf("memo: characterize %d/%d hits, fit %d/%d hits, solve %d/%d hits\n",
		m.CharHits, m.CharHits+m.CharMisses,
		m.FitHits, m.FitHits+m.FitMisses,
		m.SolveHits, m.SolveHits+m.SolveMisses)
}

// cellLabel compacts a cell's axis coordinates for the table ("I=40
// N=100"), falling back to its name for gridless suites.
func cellLabel(row burst.SuiteRow) string {
	if len(row.Axes) == 0 {
		return row.Name
	}
	label := ""
	for i, av := range row.Axes {
		if i > 0 {
			label += " "
		}
		label += av.Name + "=" + av.Value
	}
	return label
}

// printClassSummary renders the per-class table of a multiclass report:
// one row per (population, class) with the multiclass-MVA prediction
// and, when the scenario simulated, the measured per-class columns and
// validation errors.
func printClassSummary(rep *burst.Report) {
	if len(rep.ClassNames) == 0 {
		return
	}
	fmt.Printf("classes: %v\n", rep.ClassNames)
	if rep.ClassAggregation != "" {
		fmt.Printf("note: %s\n", rep.ClassAggregation)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	first := rep.Results[0]
	header := "N\tclass\tN_c"
	if first.Multiclass != nil {
		header += "\tMVA X\tMVA R(s)"
	}
	if first.Sim != nil && len(first.Sim.ClassNames) > 0 {
		header += "\tsim X\tsim R(s)"
	}
	hasValidation := false
	for _, r := range rep.Results {
		if r.Validation != nil && len(r.Validation.Classes) > 0 {
			hasValidation = true
		}
	}
	if hasValidation {
		header += "\tX err\tR err"
	}
	fmt.Fprintln(w, header)
	for _, r := range rep.Results {
		for c, name := range rep.ClassNames {
			row := fmt.Sprintf("%d\t%s", r.Population, name)
			switch {
			case r.Multiclass != nil && c < len(r.Multiclass.Classes):
				cr := r.Multiclass.Classes[c]
				row += fmt.Sprintf("\t%d\t%.2f\t%.4f", cr.Population, cr.Throughput, cr.ResponseTime)
			case r.Validation != nil && c < len(r.Validation.Classes):
				row += fmt.Sprintf("\t%d", r.Validation.Classes[c].Population)
			default:
				row += "\t"
			}
			if r.Sim != nil && c < len(r.Sim.ClassThroughput) {
				row += fmt.Sprintf("\t%.2f±%.2f\t%.4f",
					r.Sim.ClassThroughput[c].Mean, r.Sim.ClassThroughput[c].HalfWidth,
					r.Sim.ClassMeanResponse[c].Mean)
			}
			if hasValidation {
				if r.Validation != nil && c < len(r.Validation.Classes) {
					cv := r.Validation.Classes[c]
					row += fmt.Sprintf("\t%+.1f%%\t%+.1f%%", 100*cv.MVAError, 100*cv.ResponseError)
				} else {
					row += "\t\t"
				}
			}
			fmt.Fprintln(w, row)
		}
	}
	w.Flush()
	for _, r := range rep.Results {
		if r.Validation != nil && r.Validation.ClassFallbackReason != "" {
			fmt.Printf("N=%d: per-class validation degraded: %s\n", r.Population, r.Validation.ClassFallbackReason)
		}
	}
}

// colF renders one optional float column.
func colF(ok bool, v func() float64) string {
	if !ok {
		return "\t"
	}
	return fmt.Sprintf("\t%.2f", v())
}

// printSummary renders the report as one table per concern: tier model
// inputs, then a per-population row with whichever columns the
// scenario's solvers produced.
func printSummary(rep *burst.Report, elapsed time.Duration) {
	sc := rep.Scenario
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("%s: Z=%.2fs populations=%v solvers=%v (%.1fs)\n",
		name, sc.ThinkTime, sc.Populations, sc.Solvers, elapsed.Seconds())
	if rep.Degraded {
		fmt.Printf("DEGRADED: %s\n", rep.FallbackReason)
	}

	for _, tier := range rep.Tiers {
		c := tier.Characterization
		fmt.Printf("tier %-8s S=%.6gs I=%.4g p95=%.6gs", tier.Name, c.MeanServiceTime, c.IndexOfDispersion, c.P95ServiceTime)
		if tier.FitSCV != 0 {
			fmt.Printf("  (fit: SCV=%.3g gamma=%.3g)", tier.FitSCV, tier.FitGamma)
		}
		fmt.Println()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "N"
	first := rep.Results[0]
	if first.MAP != nil {
		header += "\tMAP X\tMAP R(s)"
	}
	if first.Decomp != nil {
		header += "\tdecomp X\tdecomp R(s)"
	}
	if first.MAP != nil && first.Decomp != nil {
		header += "\tdecomp err"
	}
	if first.MVA != nil {
		header += "\tMVA X\tMVA R(s)"
	}
	if first.Bounds != nil {
		header += "\tX lower\tX upper"
	}
	if first.Sim != nil {
		header += "\tsim X\tsim R(s)"
	}
	if first.Validation != nil {
		header += "\tMAP err\tMVA err"
	}
	fmt.Fprintln(w, header)
	for _, r := range rep.Results {
		row := fmt.Sprintf("%d", r.Population)
		if r.MAP != nil {
			row += fmt.Sprintf("\t%.2f\t%.4f", r.MAP.Throughput, r.MAP.ResponseTime)
		}
		if r.Decomp != nil {
			row += fmt.Sprintf("\t%.2f\t%.4f", r.Decomp.Throughput, r.Decomp.ResponseTime)
		}
		if r.MAP != nil && r.Decomp != nil {
			row += fmt.Sprintf("\t%.2f%%", 100*r.DecompError)
		}
		if r.MVA != nil {
			row += fmt.Sprintf("\t%.2f\t%.4f", r.MVA.Throughput, r.MVA.ResponseTime)
		}
		if r.Bounds != nil {
			row += fmt.Sprintf("\t%.2f\t%.2f", r.Bounds.LowerX, r.Bounds.UpperX)
		}
		if r.Sim != nil {
			row += fmt.Sprintf("\t%.2f±%.2f\t%.4f", r.Sim.Throughput.Mean, r.Sim.Throughput.HalfWidth, r.Sim.MeanResponse.Mean)
		}
		if r.Validation != nil {
			row += fmt.Sprintf("\t%+.1f%%\t%+.1f%%", 100*r.Validation.MAPError, 100*r.Validation.MVAError)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	if rep.SolverBackend != "" {
		fmt.Printf("solver: backend=%s peak CTMC states=%d\n", rep.SolverBackend, rep.PeakStates)
	}
	printClassSummary(rep)

	// Per-tier validation detail, when the loop was closed.
	for _, r := range rep.Results {
		if r.Validation == nil {
			continue
		}
		fmt.Printf("validation at N=%d (CTMC states %d, MAP within sim CI: %v):\n",
			r.Population, r.Validation.States, r.Validation.MAPWithinCI)
		for _, tier := range r.Validation.Tiers {
			fmt.Printf("  tier %-8s U sim=%.3f±%.3f  MAP=%.3f (%+.3f)  MVA=%.3f (%+.3f)  I=%.1f\n",
				tier.Name, tier.SimUtil.Mean, tier.SimUtil.HalfWidth,
				tier.MAPUtil, tier.MAPError, tier.MVAUtil, tier.MVAError, tier.IndexOfDispersion)
		}
	}
}
