package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	burst "repro"
	"repro/internal/trace"
)

// TestPartialFailureExitCode pins the documented exit-code contract: a
// continue-policy run that records failed cells exits 3 (not 1), with
// the healthy cells' rows on disk.
func TestPartialFailureExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "burstlab")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/burstlab")
	build.Dir = moduleRootBurstlab(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The db tier's monitoring stream has zero completions, so
	// characterization fails permanently for every cell.
	dead := &trace.UtilizationSamples{PeriodSeconds: 5}
	for k := 0; k < 60; k++ {
		dead.Utilization = append(dead.Utilization, 0.2)
		dead.Completions = append(dead.Completions, 0)
	}
	suite := burst.Suite{
		Name: "exit-code",
		Base: burst.Scenario{
			ThinkTime: 0.5,
			Tiers: []burst.TierSpec{
				{Name: "front", Mean: 0.006, IndexOfDispersion: 3, P95: 0.015},
				{Name: "db", Samples: dead},
			},
			Solvers: []burst.SolverKind{burst.SolverMAP},
		},
		Grid: burst.Grid{Populations: [][]int{{5}, {10}}},
	}
	data, err := suite.JSON()
	if err != nil {
		t.Fatal(err)
	}
	suitePath := filepath.Join(dir, "suite.json")
	if err := os.WriteFile(suitePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "rows.jsonl")
	cmd := exec.Command(bin, "-suite", suitePath, "-out", outPath, "-on-error", "continue", "-quiet")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected a non-zero exit, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 3 {
		t.Fatalf("exit code = %d, want 3 (partial failure)\n%s", code, out)
	}
	rows, err := burst.ReadJSONLRows(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var okRows, failedRows int
	for _, row := range rows {
		switch row.Status {
		case burst.CellStatusOK:
			okRows++
		case burst.CellStatusFailed:
			failedRows++
		}
	}
	if okRows != 0 || failedRows != 2 {
		t.Fatalf("rows ok=%d failed=%d, want 0/2 (both cells share the dead tier)\n%s", okRows, failedRows, out)
	}
}

func moduleRootBurstlab(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
