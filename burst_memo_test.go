package burst

import (
	"context"
	"path/filepath"
	"testing"
)

// TestRunSuiteWritesFooterRow pins the JSONL footer: a completed run
// appends one trailing row with status "footer" carrying the suite's
// cell totals and memo counters, and the resume reader ignores it.
func TestRunSuiteWritesFooterRow(t *testing.T) {
	s := popSuite()
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	sink, err := OpenJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSuite(context.Background(), s, sink)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := ReadJSONLRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != rep.Cells+1 {
		t.Fatalf("file has %d rows, want %d cells + 1 footer", len(rows), rep.Cells)
	}
	last := rows[len(rows)-1]
	if last.Status != CellStatusFooter || last.Footer == nil {
		t.Fatalf("last row = %+v, want a footer row", last)
	}
	if last.Footer.Cells != rep.Cells || last.Footer.Failed != rep.Failed {
		t.Fatalf("footer totals %+v do not match report (cells=%d failed=%d)", last.Footer, rep.Cells, rep.Failed)
	}
	if last.Footer.Memo != rep.Memo {
		t.Fatalf("footer memo %+v != report memo %+v", last.Footer.Memo, rep.Memo)
	}
	if rep.Memo.Hits() == 0 {
		t.Fatalf("pop-sweep suite recorded no memo hits: %+v", rep.Memo)
	}
	for _, row := range rows[:len(rows)-1] {
		if row.Footer != nil {
			t.Fatalf("cell row %d carries a footer payload", row.Index)
		}
	}

	// The footer must be invisible to resume: all cells done, none
	// failed, and the footer row itself contributes nothing.
	st, err := ReadJSONLResume(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != rep.Cells || len(st.Failed) != 0 || st.Malformed != 0 {
		t.Fatalf("resume state %+v, want %d done / 0 failed / 0 malformed", st, rep.Cells)
	}
}

// TestRunSuiteWithMemoSharesCacheAcrossRuns pins the service's cache
// premise: a second run of the same suite against the same memo is
// all hits, zero misses, and its rows are bit-identical to the first.
func TestRunSuiteWithMemoSharesCacheAcrossRuns(t *testing.T) {
	s := popSuite()
	memo := NewBoundedMemo(1024, 64<<20)

	first, err := RunSuiteWithMemo(context.Background(), s, memo.View())
	if err != nil {
		t.Fatal(err)
	}
	if first.Memo.Misses() == 0 || first.Memo.Hits() == 0 {
		t.Fatalf("cold run memo stats %+v, want both misses and hits", first.Memo)
	}
	second, err := RunSuiteWithMemo(context.Background(), s, memo.View())
	if err != nil {
		t.Fatal(err)
	}
	if second.Memo.Misses() != 0 {
		t.Fatalf("warm run recorded %d misses, want 0 (served from shared memo): %+v", second.Memo.Misses(), second.Memo)
	}
	if second.Memo.Hits() == 0 {
		t.Fatalf("warm run recorded no hits: %+v", second.Memo)
	}
	for i := range first.Rows {
		a, err := first.Rows[i].Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := second.Rows[i].Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("cell %d: warm report differs from cold", i)
		}
	}
}
