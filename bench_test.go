package burst

// The benchmarks below regenerate every table and figure of the paper's
// evaluation, printing the same rows the paper reports. Each benchmark
// runs its experiment once per iteration (they take seconds to minutes,
// so go test's default benchtime keeps b.N = 1) and reports headline
// numbers as custom metrics. Run all of them with:
//
//	go test -bench=. -benchmem
//
// Absolute values differ from the paper's testbed (our substrate is a
// simulator, not their hardware); the shapes — who wins, by what factor,
// where saturation falls — are the reproduction targets. EXPERIMENTS.md
// records paper-vs-measured for each artifact.

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkSolveThreeTier tracks the cost of the exact N-tier CTMC
// solution as the chain deepens: the same bursty workload solved as a
// two-station (front+DB) and a three-station (front+app+DB) network at
// identical population. The reported "states" metric exposes the
// state-space growth with K that motivates the product-form bounds.
func BenchmarkSolveThreeTier(b *testing.B) {
	front, err := FitMAP2(0.004, 40, 0.02, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	app, err := FitMAP2(0.006, 120, 0.04, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := FitMAP2(0.003, 25, 0.01, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	lb, err := FitMAP2(0.002, 4, 0.008, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name     string
		ebs      int
		stations []Station
	}{
		{"K=2", 30, []Station{
			{Name: "front", MAP: front.MAP},
			{Name: "db", MAP: db.MAP},
		}},
		{"K=3", 30, []Station{
			{Name: "front", MAP: front.MAP},
			{Name: "app", MAP: app.MAP},
			{Name: "db", MAP: db.MAP},
		}},
		// The K=4 chain runs at a smaller population so the bench stays
		// minutes-scale; its state space still dwarfs the K=3 one.
		{"K=4", 15, []Station{
			{Name: "lb", MAP: lb.MAP},
			{Name: "front", MAP: front.MAP},
			{Name: "app", MAP: app.MAP},
			{Name: "db", MAP: db.MAP},
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var met MAPNetworkMetricsN
			for i := 0; i < b.N; i++ {
				m, err := SolveMAPNetworkN(MAPNetworkModelN{
					Stations:  c.stations,
					ThinkTime: 0.5,
					Customers: c.ebs,
				}, SolverOptions{Tol: 1e-8})
				if err != nil {
					b.Fatal(err)
				}
				met = m
			}
			b.ReportMetric(float64(met.States), "states")
			b.ReportMetric(met.Throughput, "X")
		})
	}
}

// BenchmarkSolveDecomp tracks the near-decomposable approximate solver
// on chains the exact CTMC cannot touch: K=4 and K=6 bursty networks at
// N=200, where the exact product state space would run to billions of
// states. Each per-station chain is O(N*phases) states, so the decomp
// tier turns the exponential K-dependence into a linear one; the
// reported metrics expose the aggregate throughput, the summed chain
// states, and the outer fixed-point iteration count.
func BenchmarkSolveDecomp(b *testing.B) {
	front, err := FitMAP2(0.004, 40, 0.02, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	app, err := FitMAP2(0.006, 120, 0.04, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := FitMAP2(0.003, 25, 0.01, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	lb, err := FitMAP2(0.002, 4, 0.008, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cache, err := FitMAP2(0.0025, 10, 0.009, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	search, err := FitMAP2(0.005, 60, 0.03, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	four := []Station{
		{Name: "lb", MAP: lb.MAP},
		{Name: "front", MAP: front.MAP},
		{Name: "app", MAP: app.MAP},
		{Name: "db", MAP: db.MAP},
	}
	six := []Station{
		{Name: "lb", MAP: lb.MAP},
		{Name: "front", MAP: front.MAP},
		{Name: "cache", MAP: cache.MAP},
		{Name: "app", MAP: app.MAP},
		{Name: "search", MAP: search.MAP},
		{Name: "db", MAP: db.MAP},
	}
	for _, c := range []struct {
		name     string
		stations []Station
	}{
		{"K=4/N=200", four},
		{"K=6/N=200", six},
	} {
		b.Run(c.name, func(b *testing.B) {
			var met MAPNetworkMetricsN
			for i := 0; i < b.N; i++ {
				m, err := SolveNetworkDecomp(context.Background(), MAPNetworkModelN{
					Stations:  c.stations,
					ThinkTime: 0.5,
					Customers: 200,
				}, DecompOptions{})
				if err != nil {
					b.Fatal(err)
				}
				met = m
			}
			b.ReportMetric(met.Throughput, "X")
			b.ReportMetric(float64(met.States), "states")
			b.ReportMetric(float64(met.SolverIterations), "iterations")
		})
	}
}

// BenchmarkSolverSweep tracks the cost of a population sweep of the
// K=3 CTMC — the shape of every what-if curve in the paper (Figs. 4,
// 10-12): warm runs the production warm-started path, cold re-solves
// every population from scratch. The warm/cold ratio is the sweep
// speedup that capacity-planning callers get for free.
func BenchmarkSolverSweep(b *testing.B) {
	front, err := FitMAP2(0.004, 40, 0.02, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	app, err := FitMAP2(0.006, 120, 0.04, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := FitMAP2(0.003, 25, 0.01, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	stations := []Station{
		{Name: "front", MAP: front.MAP},
		{Name: "app", MAP: app.MAP},
		{Name: "db", MAP: db.MAP},
	}
	populations := []int{5, 10, 15, 20, 25, 30}
	opts := SolverOptions{Tol: 1e-8}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mets, err := SolveMAPNetworkSweepN(stations, 0.5, populations, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(mets[len(mets)-1].Throughput, "X@30")
				b.ReportMetric(float64(mets[len(mets)-1].States), "states@30")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var last MAPNetworkMetricsN
			for _, n := range populations {
				met, err := SolveMAPNetworkN(MAPNetworkModelN{
					Stations:  stations,
					ThinkTime: 0.5,
					Customers: n,
				}, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = met
			}
			if i == 0 {
				b.ReportMetric(last.Throughput, "X@30")
			}
		}
	})
}

// BenchmarkRunSuite tracks batch throughput of the suite engine on the
// committed examples/suite grid: 16 content-addressed cells (database
// I ∈ {1, 4, 40, 400} × four populations) executed over the worker
// pool with stage memoization. The reported metrics expose the memo
// economics (distinct fits vs total (cell, tier) pairs) alongside the
// wall-clock ns/op that BENCH_solver.json archives.
func BenchmarkRunSuite(b *testing.B) {
	suite, err := LoadSuite("examples/suite/suite.json")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := RunSuite(context.Background(), suite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Cells), "cells")
			b.ReportMetric(float64(rep.Memo.FitMisses), "fits")
			b.ReportMetric(float64(rep.Memo.FitMisses+rep.Memo.FitHits), "fit-lookups")
			last := rep.Rows[len(rep.Rows)-1].Report.Results[0]
			b.ReportMetric(last.MAP.Throughput, "X(I=400,N=150)")
		}
	}
}

// BenchmarkMulticlassMVA tracks the cost of the multiclass MVA solvers
// that back per-class what-if predictions: exact walks the full
// population lattice (its cost is the lattice size, here (N/2+1)^2 per
// solve at the paper's two-tier shape plus a three-class variant), approx
// runs the Schweitzer/Bard fixed point at a population far beyond any
// tractable lattice. The reported X is the aggregate throughput, a
// correctness canary alongside the timing.
func BenchmarkMulticlassMVA(b *testing.B) {
	two := MultiNetwork{
		Demands:    [][]float64{{0.004, 0.005}, {0.009, 0.03}},
		ThinkTimes: []float64{0.5, 0.5},
	}
	three := MultiNetwork{
		Demands:    [][]float64{{0.004, 0.005}, {0.009, 0.03}, {0.002, 0.012}},
		ThinkTimes: []float64{0.5, 0.5, 0.5},
	}
	b.Run("exact/C=2/N=100", func(b *testing.B) {
		var x float64
		for i := 0; i < b.N; i++ {
			res, err := SolveMulticlass(two, []int{50, 50})
			if err != nil {
				b.Fatal(err)
			}
			x = res.Throughput[0] + res.Throughput[1]
		}
		b.ReportMetric(x, "X")
	})
	b.Run("exact/C=3/N=90", func(b *testing.B) {
		var x float64
		for i := 0; i < b.N; i++ {
			res, err := SolveMulticlass(three, []int{30, 30, 30})
			if err != nil {
				b.Fatal(err)
			}
			x = res.Throughput[0] + res.Throughput[1] + res.Throughput[2]
		}
		b.ReportMetric(x, "X")
	})
	b.Run("approx/C=3/N=3000", func(b *testing.B) {
		var x float64
		for i := 0; i < b.N; i++ {
			res, err := SolveMulticlassApprox(three, []int{1000, 1000, 1000}, 1e-10)
			if err != nil {
				b.Fatal(err)
			}
			x = res.Throughput[0] + res.Throughput[1] + res.Throughput[2]
		}
		b.ReportMetric(x, "X")
	})
}

// benchScale is the measurement scale used by the benchmark harness:
// long enough for stable estimates, short enough that the full suite
// completes in minutes.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.SimDuration = 1200
	s.FitDuration = 2400
	return s
}

// BenchmarkFigure1BurstinessProfiles regenerates Fig. 1: four traces with
// identical hyperexponential marginal (mean 1, SCV 3) and increasing
// burstiness; the index of dispersion discriminates them.
func BenchmarkFigure1BurstinessProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(11, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-22s %8s %6s %10s %10s", "profile", "mean", "SCV", "I", "paper I")
			for _, r := range rows {
				b.Logf("%-22s %8.3f %6.2f %10.1f %10.1f", r.Profile, r.Mean, r.SCV, r.I, r.PaperI)
			}
			b.ReportMetric(rows[3].I, "I(single-burst)")
			b.ReportMetric(rows[0].I, "I(random)")
		}
	}
}

// BenchmarkTable1MTrace1 regenerates Table 1: M/Trace/1 mean and 95th
// percentile response times at rho = 0.5 and 0.8 for the four profiles.
func BenchmarkTable1MTrace1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(11, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-22s %7s | %9s %9s | %9s %9s", "workload", "I", "mean(.5)", "p95(.5)", "mean(.8)", "p95(.8)")
			for _, r := range rows {
				b.Logf("%-22s %7.1f | %9.2f %9.2f | %9.2f %9.2f",
					r.Profile, r.I, r.Mean50, r.P95At50, r.Mean80, r.P95At80)
				b.Logf("%-22s %7s | %9.2f %9.2f | %9.2f %9.2f",
					"  (paper)", "", r.PaperMean50, r.PaperP95At50, r.PaperMean80, r.PaperP95At80)
			}
			b.ReportMetric(rows[3].Mean50/rows[0].Mean50, "burst-penalty-x")
		}
	}
}

// BenchmarkFigure4ThroughputUtilization regenerates Fig. 4: system
// throughput and per-tier utilizations versus EBs for the three mixes.
func BenchmarkFigure4ThroughputUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(21, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-9s %5s %8s %8s %8s", "mix", "EBs", "TPUT", "U_front", "U_db")
			var peak float64
			for _, r := range rows {
				b.Logf("%-9s %5d %8.1f %8.2f %8.2f", r.Mix, r.EBs, r.TPUT, r.UtilFront, r.UtilDB)
				if r.TPUT > peak {
					peak = r.TPUT
				}
			}
			b.ReportMetric(peak, "peak-TPUT")
		}
	}
}

// BenchmarkFigure5UtilizationTimeline regenerates Fig. 5: 1-second
// utilization timelines at 100 EBs; the bottleneck switch shows up as
// periods where DB utilization exceeds the front's.
func BenchmarkFigure5UtilizationTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, _, err := experiments.Figure5And6(31, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-9s %8s %8s %8s %8s %8s", "mix", "U_front", "U_db", "P90(Udb)", "max(Udb)", "switch")
			for _, s := range stats {
				b.Logf("%-9s %8.2f %8.2f %8.2f %8.2f %8.3f",
					s.Mix, s.MeanFront, s.MeanDB, s.P90DB, s.MaxDB, s.SwitchFraction)
				if s.Mix == "browsing" {
					b.ReportMetric(s.SwitchFraction, "browsing-switch-frac")
				}
			}
		}
	}
}

// BenchmarkFigure6DBQueueBurstiness regenerates Fig. 6: DB queue-length
// dynamics at 100 EBs — bursty spikes toward the full population under
// the browsing mix only.
func BenchmarkFigure6DBQueueBurstiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, _, err := experiments.Figure5And6(31, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-9s %10s %10s %10s %10s", "mix", "Qdb mean", "Qdb P10", "Qdb P90", "Qdb max")
			for _, s := range stats {
				b.Logf("%-9s %10.1f %10.1f %10.1f %10.0f",
					s.Mix, s.MeanQueueDB, s.QueueP10, s.QueueP90, s.MaxQueueDB)
				if s.Mix == "browsing" {
					b.ReportMetric(s.MaxQueueDB, "browsing-max-Qdb")
				}
			}
		}
	}
}

// BenchmarkFigure7And8TransactionBreakdown regenerates Figs. 7-8: the
// Best Seller and Home in-system counts that identify the transactions
// responsible for the DB queue spikes.
func BenchmarkFigure7And8TransactionBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7And8(41, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-9s %-12s %7s %10s %10s %8s", "mix", "type", "share", "mean-in", "max-in", "corrQ")
			for _, r := range rows {
				b.Logf("%-9s %-12s %7.3f %10.1f %10.0f %8.2f",
					r.Mix, r.Type, r.Share, r.MeanInSystem, r.MaxInSystem, r.CorrWithDBQueue)
				if r.Mix == "browsing" && r.Type == "BestSellers" {
					b.ReportMetric(r.CorrWithDBQueue, "bestseller-queue-corr")
				}
			}
		}
	}
}

// BenchmarkFigure10MVAAccuracy regenerates Fig. 10: MVA predictions
// versus measured throughput — accurate for shopping/ordering, badly
// wrong for browsing (paper: up to 36% error).
func BenchmarkFigure10MVAAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(51, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%-9s %5s %9s %9s %8s", "mix", "EBs", "measured", "MVA", "err%")
			worstBrowsing := 0.0
			for _, r := range rows {
				b.Logf("%-9s %5d %9.1f %9.1f %8.1f", r.Mix, r.EBs, r.Measured, r.MVA, 100*r.MVAErr)
				if r.Mix == "browsing" && r.MVAErr > worstBrowsing {
					worstBrowsing = r.MVAErr
				}
			}
			b.ReportMetric(100*worstBrowsing, "worst-browsing-MVA-err%")
		}
	}
}

// BenchmarkFigure11GranularityImpact regenerates Fig. 11: models fitted
// from Zestim = 0.5 s versus Zestim = 7 s browsing-mix measurements;
// finer effective granularity yields the better model.
func BenchmarkFigure11GranularityImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11(71, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%5s %9s | %9s %7s | %9s %7s | %15s", "EBs", "measured",
				"model-Z.5", "err%", "model-Z7", "err%", "paper err% (.5/7)")
			for _, r := range rows {
				b.Logf("%5d %9.1f | %9.1f %7.1f | %9.1f %7.1f | %7.1f/%7.1f",
					r.EBs, r.Measured, r.ModelZ05, 100*r.ErrZ05, r.ModelZ7, 100*r.ErrZ7,
					100*r.PaperErr05, 100*r.PaperErr7)
			}
			b.ReportMetric(100*rows[0].ErrZ7, "Z7-err%@25EB")
		}
	}
}

// BenchmarkFigure12MAPModelAccuracy regenerates Fig. 12, the headline
// validation: the MAP queueing network versus MVA versus measurements
// across all three mixes, with the fitted I values per tier.
func BenchmarkFigure12MAPModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure12(61, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, res := range results {
				b.Logf("%s: I_front=%.1f (paper %.0f)  I_db=%.1f (paper %.0f)",
					res.Mix, res.IFront, res.PaperIF, res.IDB, res.PaperID)
				b.Logf("%5s %9s %9s %7s %9s %7s", "EBs", "measured", "MAP", "err%", "MVA", "err%")
				for _, r := range res.Rows {
					b.Logf("%5d %9.1f %9.1f %7.1f %9.1f %7.1f",
						r.EBs, r.Measured, r.MAPModel, 100*r.MAPErr, r.MVA, 100*r.MVAErr)
				}
				if res.Mix == "browsing" {
					last := res.Rows[len(res.Rows)-1]
					b.ReportMetric(100*last.MAPErr, "browsing-MAP-err%")
					b.ReportMetric(100*last.MVAErr, "browsing-MVA-err%")
				}
			}
		}
	}
}

// BenchmarkAblationIdleSemantics quantifies the frozen-phase vs
// free-running-phase design choice of the MAP queueing network
// (DESIGN.md section 5).
func BenchmarkAblationIdleSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationIdleSemantics(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%5s %10s %14s %8s", "EBs", "frozen-X", "free-running-X", "diff%")
			for _, r := range rows {
				b.Logf("%5d %10.1f %14.1f %8.1f", r.EBs, r.FrozenX, r.FreeRunningX, 100*r.RelDifference)
			}
			b.ReportMetric(100*rows[1].RelDifference, "diff%@25EB")
		}
	}
}

// BenchmarkAblationSelectionPolicy compares the paper's default
// closest-p95 MAP(2) selection with the conservative max-lag-1 rule of
// footnote 8.
func BenchmarkAblationSelectionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSelectionPolicy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%5s %12s %10s", "EBs", "closest-p95", "max-lag1")
			for _, r := range rows {
				b.Logf("%5d %12.1f %10.1f", r.EBs, r.ClosestP95X, r.MaxLag1X)
			}
		}
	}
}

// BenchmarkAblationP95Bias reproduces the Section 4.1 claim about the
// busy-period p95 estimator: accurate for I >> 100, biased at low I.
func BenchmarkAblationP95Bias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationP95Bias(5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%8s %10s %10s %8s", "true I", "true p95", "estimate", "bias%")
			for _, r := range rows {
				b.Logf("%8.0f %10.4f %10.4f %8.0f", r.TrueI, r.TrueP95, r.EstimatedP95, 100*r.RelBias)
			}
			b.ReportMetric(100*rows[len(rows)-1].RelBias, "bias%@high-I")
		}
	}
}

// BenchmarkAblationGranularityRecovery isolates the Fig. 11 measurement-
// granularity effect: the same service process monitored at decreasing
// load (fewer completions per window).
func BenchmarkAblationGranularityRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGranularityRecovery(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%14s %8s %10s %8s", "jobs/window", "true I", "estimate", "err%")
			for _, r := range rows {
				b.Logf("%14.0f %8.0f %10.0f %8.0f", r.JobsPerWindow, r.TrueI, r.EstimatedI, 100*r.RelError)
			}
		}
	}
}

// BenchmarkAblationBurstinessSweep sweeps the database contention
// intensity of the browsing mix and shows where MVA starts failing.
func BenchmarkAblationBurstinessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBurstinessSweep(9, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%10s %8s %10s %10s %8s", "trigger-p", "I_db", "measured", "MVA", "err%")
			for _, r := range rows {
				b.Logf("%10.4f %8.1f %10.1f %10.1f %8.1f",
					r.TriggerProbability, r.IDB, r.MeasuredX, r.MVAX, 100*r.MVAErr)
			}
			b.ReportMetric(100*rows[len(rows)-1].MVAErr, "MVA-err%@max-contention")
		}
	}
}
