#!/bin/sh
# serve-smoke: end-to-end check of the capacity-planning service. Builds
# burstlab and burstlabd, starts a daemon on an ephemeral port, submits
# the committed examples/service suite through `burstlab -remote`
# (cold, then again with -rerun against the warm shared memo), runs the
# same suite as a local batch job, and requires the three row sets to be
# bit-identical cell for cell. Finishes by SIGTERM-ing the daemon and
# requiring a clean (exit 0) drain. CI runs this via `make serve-smoke`.
set -eu

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

suite="examples/service/suite.json"

echo "serve-smoke: building burstlab and burstlabd"
go build -o "$tmp/burstlab" ./cmd/burstlab
go build -o "$tmp/burstlabd" ./cmd/burstlabd

echo "serve-smoke: starting daemon"
"$tmp/burstlabd" -spool "$tmp/spool" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
	>"$tmp/daemon.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "serve-smoke: daemon never published its address" >&2
		cat "$tmp/daemon.log" >&2
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "serve-smoke: daemon exited before binding" >&2
		cat "$tmp/daemon.log" >&2
		exit 1
	fi
	sleep 0.05
done
addr="$(cat "$tmp/addr")"

echo "serve-smoke: submitting $suite to $addr (cold)"
"$tmp/burstlab" -remote "$addr" -suite "$suite" -out "$tmp/remote.jsonl" -quiet

echo "serve-smoke: resubmitting with -rerun (served from the shared memo)"
"$tmp/burstlab" -remote "$addr" -rerun -suite "$suite" -out "$tmp/rerun.jsonl" -quiet

echo "serve-smoke: local batch reference run"
"$tmp/burstlab" -suite "$suite" -out "$tmp/batch.jsonl" -quiet >/dev/null

# Cell rows must be bit-identical across all three runs regardless of
# completion order (sort normalizes it). The trailing footer row is
# checked for presence only: its memo counters legitimately differ
# between a cold batch run and a warm daemon.
for f in remote rerun batch; do
	if ! grep -q '"status":"footer"' "$tmp/$f.jsonl"; then
		echo "serve-smoke: $f.jsonl has no footer row (incomplete run?)" >&2
		exit 1
	fi
	grep -v '"status":"footer"' "$tmp/$f.jsonl" | sort >"$tmp/$f.cells"
done
if ! diff -u "$tmp/batch.cells" "$tmp/remote.cells"; then
	echo "serve-smoke: daemon rows differ from the batch run" >&2
	exit 1
fi
if ! diff -u "$tmp/batch.cells" "$tmp/rerun.cells"; then
	echo "serve-smoke: memo-served rerun rows differ from the batch run" >&2
	exit 1
fi

echo "serve-smoke: draining daemon with SIGTERM"
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	echo "serve-smoke: daemon exited non-zero after SIGTERM" >&2
	cat "$tmp/daemon.log" >&2
	exit 1
fi
daemon_pid=""

echo "serve-smoke: OK"
