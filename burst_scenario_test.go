package burst

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tpcw"
)

// modelScenario is a small, fast, fully deterministic scenario: two
// tiers with explicit characterizations, solved analytically.
func modelScenario() Scenario {
	return Scenario{
		Name:        "model-only",
		ThinkTime:   0.5,
		Populations: []int{5, 10},
		Tiers: []TierSpec{
			{Name: "front", Mean: 0.006, IndexOfDispersion: 3, P95: 0.015},
			{Name: "db", Mean: 0.009, IndexOfDispersion: 40, P95: 0.02},
		},
		Solvers: []SolverKind{SolverMAP, SolverMVA, SolverBounds},
	}
}

// simScenario is a quick simulation-backed scenario used by the sim and
// cancellation tests.
func simScenario() Scenario {
	return Scenario{
		Name:        "sim-quick",
		ThinkTime:   0.5,
		Populations: []int{15},
		Workload: &WorkloadSpec{
			Mix: "shopping", Tiers: 2, Duration: 300,
			Warmup: 30, Cooldown: 15, Seed: 99, Replicas: 2,
		},
		Solvers: []SolverKind{SolverSim},
	}
}

func TestZeroWindowConstantsAgree(t *testing.T) {
	if core.ZeroWindow != tpcw.ZeroWindow {
		t.Fatalf("core.ZeroWindow = %v, tpcw.ZeroWindow = %v — the scenario layer and the simulator must agree",
			core.ZeroWindow, tpcw.ZeroWindow)
	}
}

// TestRunModelScenarioDelegates pins the facade contract: a Scenario run
// produces exactly the numbers of the (deprecated) function-per-step
// pipeline, because both route through the same internal machinery.
func TestRunModelScenarioDelegates(t *testing.T) {
	sc := modelScenario()
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || len(rep.Tiers) != 2 {
		t.Fatalf("report shape: %d results, %d tiers", len(rep.Results), len(rep.Tiers))
	}
	if rep.TierNames[0] != "front" || rep.TierNames[1] != "db" {
		t.Fatalf("tier names %v", rep.TierNames)
	}

	// Legacy path: NewPlanNFromCharacterizations + Predict + Bounds.
	chars := []Characterization{
		{MeanServiceTime: 0.006, IndexOfDispersion: 3, P95ServiceTime: 0.015},
		{MeanServiceTime: 0.009, IndexOfDispersion: 40, P95ServiceTime: 0.02},
	}
	plan, err := NewPlanNFromCharacterizations(chars, 0.5, PlannerOptions{TierNames: []string{"front", "db"}})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := plan.Predict([]int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := plan.Bounds([]int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		got, want := rep.Results[i].MAP, preds[i].MAP
		if got == nil || got.Throughput != want.Throughput || !reflect.DeepEqual(got.Utils, want.Utils) {
			t.Errorf("population %d: scenario MAP %+v != legacy %+v", preds[i].EBs, got, want)
		}
		if rep.Results[i].MVA == nil || rep.Results[i].MVA.Throughput != preds[i].MVA.Throughput {
			t.Errorf("population %d: scenario MVA diverges from legacy", preds[i].EBs)
		}
		if rep.Results[i].Bounds == nil || rep.Results[i].Bounds.UpperX != bounds[i].UpperX ||
			rep.Results[i].Bounds.LowerX != bounds[i].LowerX {
			t.Errorf("population %d: scenario bounds diverge from legacy", preds[i].EBs)
		}
	}
}

// TestScenarioJSONRoundTripRunEquivalence is the satellite-task
// guarantee: marshal → unmarshal → Run produces a byte-identical report
// on a fixed seed.
func TestScenarioJSONRoundTripRunEquivalence(t *testing.T) {
	sc := modelScenario()
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("round-tripped scenario produced a different report")
	}

	// The report itself round-trips through JSON.
	rj, err := rep1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseReport(rj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, back2) {
		t.Fatal("report JSON round trip mismatch")
	}
}

// TestRunSimScenarioDelegates checks the simulation column against the
// deprecated replica API on the same seed.
func TestRunSimScenarioDelegates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed scenario is slow under -short/-race instrumentation")
	}
	sc := simScenario()
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sim := rep.Results[0].Sim
	if sim == nil || sim.Replicas != 2 {
		t.Fatalf("sim point: %+v", sim)
	}

	cfg := TPCWConfigN{
		Mix: ShoppingMix(), ThinkTime: 0.5, EBs: 15,
		Duration: 300, Warmup: 30, Cooldown: 15, Seed: 99,
	}
	cfg.Tiers, err = DefaultTPCWTiers(cfg.Mix, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SimulateTPCWReplicas(cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Throughput != rr.Throughput || sim.MeanResponse != rr.MeanResponse {
		t.Fatalf("scenario sim %+v != legacy replicas %+v", sim.Throughput, rr.Throughput)
	}
}

// TestCommittedScenarioMatchesCrossValidate is the acceptance check: the
// committed examples/scenariofile/scenario.json runs through Run and its
// MAP-vs-simulation deltas equal the CrossValidateTPCW path on the same
// fixed seed.
func TestCommittedScenarioMatchesCrossValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation scenario is slow under -short/-race instrumentation")
	}
	sc, err := LoadScenario("examples/scenariofile/scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Validation == nil {
		t.Fatalf("expected one validated population, got %+v", rep.Results)
	}
	v := rep.Results[0].Validation

	mix := BrowsingMix()
	tiers, err := DefaultTPCWTiers(mix, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TPCWConfigN{
		Mix: mix, Tiers: tiers, EBs: 40, ThinkTime: 0.5,
		Duration: 600, Warmup: 60, Cooldown: 30, Seed: 2024,
	}
	legacy, err := CrossValidateTPCW(cfg, ValidationOptions{
		Replicas: 2,
		Planner:  PlannerOptions{Solver: SolverOptions{Tol: 1e-8}},
	})
	if err != nil {
		t.Fatal(err)
	}

	const tol = 1e-9
	if math.Abs(v.MAPError-legacy.MAPError) > tol || math.Abs(v.MVAError-legacy.MVAError) > tol {
		t.Fatalf("scenario deltas (MAP %+.4f%%, MVA %+.4f%%) != CrossValidateTPCW (MAP %+.4f%%, MVA %+.4f%%)",
			100*v.MAPError, 100*v.MVAError, 100*legacy.MAPError, 100*legacy.MVAError)
	}
	if v.SimThroughput != legacy.SimThroughput || v.States != legacy.States {
		t.Fatalf("scenario ground truth diverges: %+v vs %+v", v.SimThroughput, legacy.SimThroughput)
	}
	for i, tierV := range v.Tiers {
		if math.Abs(tierV.MAPError-legacy.Tiers[i].MAPError) > tol {
			t.Errorf("tier %s MAP utilization delta %v != legacy %v",
				tierV.Name, tierV.MAPError, legacy.Tiers[i].MAPError)
		}
	}
	t.Logf("deltas at %d EBs: MAP %+.2f%%, MVA %+.2f%% (sim X = %.2f ± %.2f)",
		rep.Results[0].Population, 100*v.MAPError, 100*v.MVAError,
		v.SimThroughput.Mean, v.SimThroughput.HalfWidth)
}

// waitGoroutines polls until the goroutine count returns to within a
// small slack of the baseline, failing the test on timeout — the
// goroutine-leak check for canceled runs.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d goroutines, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunCancelDuringSimulation cancels a simulation-backed scenario
// from its first progress event and expects a prompt ctx.Err() with no
// leaked worker goroutines.
func TestRunCancelDuringSimulation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sc := simScenario()
	sc.Workload.Replicas = 4
	canceled := make(chan struct{})
	sc.OnProgress = func(ev ProgressEvent) {
		if ev.Stage == core.StageSimulate {
			select {
			case <-canceled:
			default:
				close(canceled)
				cancel()
			}
		}
	}
	// Cancel even if no replica ever completes (paranoia against hangs).
	timer := time.AfterFunc(30*time.Second, cancel)
	defer timer.Stop()

	start := time.Now()
	_, err := Run(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestRunCancelMidSweep cancels a MAP population sweep after its first
// population and expects ctx.Err() within one sweep step.
func TestRunCancelMidSweep(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sc := modelScenario()
	sc.Populations = []int{5, 10, 15, 20, 25}
	var solved int
	sc.OnProgress = func(ev ProgressEvent) {
		if ev.Stage == core.StageSolve {
			solved++
			cancel()
		}
	}
	rep, err := Run(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned (%v, %v), want context.Canceled", rep, err)
	}
	if solved != 1 {
		t.Fatalf("sweep solved %d populations after cancellation, want exactly 1 (within one sweep step)", solved)
	}
	waitGoroutines(t, baseline)
}

// TestRunCancelBeforeStart: an already-canceled context never starts
// simulating.
func TestRunCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, simScenario())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("pre-canceled run was not immediate")
	}
}

// TestRunValidationErrors exercises the scenario validation surface at
// the facade.
func TestRunValidationErrors(t *testing.T) {
	if _, err := Run(context.Background(), Scenario{}); err == nil {
		t.Fatal("empty scenario must not run")
	}
	sc := modelScenario()
	sc.Solvers = []SolverKind{"warp-drive"}
	if _, err := Run(context.Background(), sc); err == nil {
		t.Fatal("unknown solver must not run")
	}
	ws := simScenario()
	ws.Workload.Mix = "hammering"
	if _, err := Run(context.Background(), ws); err == nil {
		t.Fatal("unknown mix must not run")
	}
}
