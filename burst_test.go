package burst

import (
	"math"
	"testing"
)

// The facade tests exercise the public API end to end at small scale;
// deep behaviour is covered by the internal package suites.

func TestFacadeTraceWorkflow(t *testing.T) {
	src := NewSource(1)
	tr, err := GenerateBurstyTrace(20000, 1, 3, ProfileStrongBursts, src)
	if err != nil {
		t.Fatal(err)
	}
	i, err := IndexOfDispersion(tr, DispersionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if i < 10 {
		t.Errorf("I = %v, want strongly bursty", i)
	}
	res, err := SimulateMTrace1(tr, 0.5, NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse <= 1 {
		t.Errorf("bursty M/Trace/1 response = %v, want > service mean", res.MeanResponse)
	}
}

func TestFacadeFitAndModel(t *testing.T) {
	fit, err := FitMAP2(0.005, 120, 0.02, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MAP.Mean()-0.005) > 1e-6 {
		t.Errorf("fitted mean = %v", fit.MAP.Mean())
	}
	met, err := SolveMAPNetwork(MAPNetworkModel{
		Front:     fit.MAP,
		DB:        fit.MAP,
		ThinkTime: 0.5,
		Customers: 10,
	}, SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.Throughput <= 0 {
		t.Error("zero model throughput")
	}
	base, err := SolveMVA(0.005, 0.005, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if met.Throughput > base.Throughput*1.01 {
		t.Errorf("bursty model X %v should not exceed MVA %v", met.Throughput, base.Throughput)
	}
}

func TestFacadeTPCWAndPlan(t *testing.T) {
	run, err := SimulateTPCW(TPCWConfig{
		Mix: OrderingMix(), EBs: 30, Seed: 3,
		Duration: 900, Warmup: 60, Cooldown: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(run.FrontSamples)
	if err != nil {
		t.Fatal(err)
	}
	if ch.MeanServiceTime <= 0 {
		t.Error("characterization failed")
	}
	plan, err := NewPlan(run.FrontSamples, run.DBSamples, 0.5, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := plan.Predict([]int{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 || preds[1].MAP.Throughput <= preds[0].MAP.Throughput*0.5 {
		t.Errorf("predictions implausible: %+v", preds)
	}
}

func TestFacadeMixes(t *testing.T) {
	if BrowsingMix().Name != "browsing" || ShoppingMix().Name != "shopping" || OrderingMix().Name != "ordering" {
		t.Error("mix constructors wrong")
	}
	// A deterministic measurement stream has zero count variance, so the
	// Figure 2 estimator must report I = 0; noisy counts give I > 0.
	est, err := EstimateIndexOfDispersion(UtilizationSamples{
		PeriodSeconds: 5,
		Utilization:   fill(400, 0.8),
		Completions:   fill(400, 40),
	}, DispersionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.I != 0 {
		t.Errorf("deterministic stream I = %v, want 0", est.I)
	}
	noisy := UtilizationSamples{PeriodSeconds: 5}
	src := NewSource(9)
	for k := 0; k < 400; k++ {
		noisy.Utilization = append(noisy.Utilization, 0.5+0.4*src.Float64())
		noisy.Completions = append(noisy.Completions, float64(20+src.Intn(40)))
	}
	est2, err := EstimateIndexOfDispersion(noisy, DispersionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est2.I <= 0 {
		t.Errorf("noisy stream I = %v, want > 0", est2.I)
	}
	if _, err := NewPlanFromCharacterizations(
		Characterization{MeanServiceTime: 0.005, IndexOfDispersion: 10, P95ServiceTime: 0.02},
		Characterization{MeanServiceTime: 0.004, IndexOfDispersion: 50, P95ServiceTime: 0.03},
		0.5, PlannerOptions{}); err != nil {
		t.Fatal(err)
	}
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestFacadeExtensions(t *testing.T) {
	// Hurst parameter.
	tr, err := GenerateBurstyTrace(20000, 1, 3, ProfileStrongBursts, NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	h, err := HurstParameter(tr)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0.5 || h > 1 {
		t.Errorf("bursty Hurst = %v, want in (0.5, 1]", h)
	}

	// Counts-route MMPP fitting.
	mmpp, err := FitMMPP2FromCounts(100, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mmpp.Order() != 2 {
		t.Errorf("MMPP order = %d, want 2", mmpp.Order())
	}

	// Model bounds bracket an exact solve.
	fit, err := FitMAP2(0.005, 80, 0.03, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := MAPNetworkModel{Front: fit.MAP, DB: fit.MAP, ThinkTime: 0.5, Customers: 20}
	b, err := ModelBounds(m)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveMAPNetwork(m, SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Throughput > b.UpperX*1.001 || exact.Throughput < b.LowerX*0.999 {
		t.Errorf("bounds [%v, %v] do not bracket exact %v", b.LowerX, b.UpperX, exact.Throughput)
	}

	// Heavy-traffic waiting formula.
	w, err := HeavyTrafficWait(0.8, 0.01, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Errorf("heavy traffic wait = %v", w)
	}
}
