package burst

import (
	"math"
	"testing"
)

// synthTierSamples fabricates monitoring data for one tier: per-window
// utilizations and completion counts whose service speed is modulated by
// a slow two-state burst regime (burstFactor > 1 makes the tier bursty,
// 1 keeps it smooth). During a burst the server slows down — utilization
// rises while completions do not — which is precisely the service-process
// burstiness the Figure 2 estimator detects from (U_k, n_k) pairs.
func synthTierSamples(seed int64, meanService, burstFactor float64) UtilizationSamples {
	const (
		period  = 5.0
		windows = 600
	)
	src := NewSource(seed)
	u := UtilizationSamples{PeriodSeconds: period}
	inBurst := false
	arrivals := 0.25 * period / meanService // ~25% utilization off-burst
	for k := 0; k < windows; k++ {
		// Sticky regime switching keeps bursts spanning several windows.
		if inBurst {
			inBurst = src.Float64() < 0.85
		} else {
			inBurst = src.Float64() < 0.05
		}
		// Per-window service speed: iid noise keeps even "smooth" tiers
		// stochastic; the sticky burst regime slows service further.
		s := meanService * (0.55 + 0.9*src.Float64())
		if inBurst {
			s *= burstFactor
		}
		completions := math.Round(arrivals * (0.8 + 0.4*src.Float64()))
		util := completions * s / period
		if util > 0.98 {
			util = 0.98
		}
		u.Completions = append(u.Completions, completions)
		u.Utilization = append(u.Utilization, util)
	}
	return u
}

// TestFacadeThreeTierEndToEnd is the N-tier acceptance path: build a
// 3-tier closed MAP network (front + app + DB + think) from three
// UtilizationSamples inputs and solve it end-to-end via the facade, with
// per-station utilizations, queue-length distributions and throughput
// reported.
func TestFacadeThreeTierEndToEnd(t *testing.T) {
	tiers := []UtilizationSamples{
		synthTierSamples(11, 0.004, 1.0), // smooth front
		synthTierSamples(23, 0.006, 2.0), // bursty app tier
		synthTierSamples(37, 0.003, 1.0), // smooth db
	}
	chars, err := CharacterizeAll(tiers)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 3 {
		t.Fatalf("got %d characterizations", len(chars))
	}
	for i, c := range chars {
		t.Logf("tier %d: S=%.5f I=%.1f p95=%.5f", i, c.MeanServiceTime, c.IndexOfDispersion, c.P95ServiceTime)
		if c.MeanServiceTime <= 0 || c.IndexOfDispersion <= 0 {
			t.Fatalf("tier %d characterization degenerate: %+v", i, c)
		}
	}
	// The bursty middle tier must be measured as burstier than the
	// smooth front.
	if chars[1].IndexOfDispersion <= chars[0].IndexOfDispersion {
		t.Errorf("app tier I = %v should exceed front I = %v",
			chars[1].IndexOfDispersion, chars[0].IndexOfDispersion)
	}

	plan, err := NewPlanN(tiers, 0.5, PlannerOptions{
		TierNames: []string{"front", "app", "db"},
		Solver:    SolverOptions{Tol: 1e-8},
	})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := plan.Predict([]int{5, 12, 24})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range preds {
		if len(p.MAP.Utils) != 3 || len(p.MAP.QueueDists) != 3 {
			t.Fatalf("per-station metrics missing: %+v", p.MAP)
		}
		if p.MAP.Throughput <= 0 || p.MAP.Throughput < prev-1e-9 {
			t.Errorf("implausible throughput sequence at %d EBs: %v", p.EBs, p.MAP.Throughput)
		}
		prev = p.MAP.Throughput
		for s, dist := range p.MAP.QueueDists {
			sum := 0.0
			for _, q := range dist {
				sum += q
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%d EBs: station %d distribution sums to %v", p.EBs, s, sum)
			}
		}
		if p.MAP.Throughput > p.MVA.Throughput*1.01 {
			t.Errorf("%d EBs: MAP X %v exceeds MVA baseline %v", p.EBs, p.MAP.Throughput, p.MVA.Throughput)
		}
	}

	// The same three tiers solved directly through the network facade.
	met, err := SolveMAPNetworkN(MAPNetworkModelN{
		Stations: []Station{
			{Name: "front", MAP: plan.Tiers[0].Fit.MAP},
			{Name: "app", MAP: plan.Tiers[1].Fit.MAP},
			{Name: "db", MAP: plan.Tiers[2].Fit.MAP},
		},
		ThinkTime: 0.5,
		Customers: 12,
	}, SolverOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Plan predictions run as a warm-started sweep, so the iterative
	// solver stops at a (slightly) different point inside the same
	// residual-tolerance ball as this cold solve: compare within solver
	// accuracy, not bitwise.
	if relDiff := math.Abs(met.Throughput-preds[1].MAP.Throughput) / met.Throughput; relDiff > 1e-4 {
		t.Errorf("facade network solve X = %v, plan predict X = %v (rel diff %v)",
			met.Throughput, preds[1].MAP.Throughput, relDiff)
	}

	// N-tier bounds bracket the exact solution and reach large N.
	b, err := ModelBoundsN(MAPNetworkModelN{
		Stations:  plan.Stations(),
		ThinkTime: 0.5,
		Customers: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Throughput > b.UpperX*1.001 || met.Throughput < b.LowerX*0.999 {
		t.Errorf("bounds [%v, %v] miss exact %v", b.LowerX, b.UpperX, met.Throughput)
	}

	// K-station MVA via the facade agrees with the plan's baseline.
	base, err := SolveMVAN([]float64{
		plan.Tiers[0].Demand(), plan.Tiers[1].Demand(), plan.Tiers[2].Demand(),
	}, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Throughput-preds[1].MVA.Throughput) > 1e-9 {
		t.Errorf("facade MVA X = %v, plan baseline X = %v", base.Throughput, preds[1].MVA.Throughput)
	}
}
